// Invariant-checker registry for chaos runs.
//
// A chaos scenario is only as good as the properties it checks afterwards.
// This module collects named predicates over a deployment's end state —
// ledger cost conservation, kernel queue exactness, sink-tree consistency
// after partitions heal, chaos-engine quiescence — and runs them all,
// reporting every violation with enough detail to debug from the printed
// seed + schedule alone.  Checks return std::nullopt on success or a
// human-readable detail string on failure; they must not mutate observable
// simulation state (the kernel probe schedules and cancels its own no-ops,
// which is invisible to pending()-exactness and determinism).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/routing.hpp"
#include "sim/chaos.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace pgrid::sim {

/// One failed invariant.
struct Violation {
  std::string invariant;  ///< registry name of the failed check
  std::string detail;     ///< what was observed vs expected
};

/// Named collection of checks, run in registration order.
class InvariantRegistry {
 public:
  /// A check returns std::nullopt when the invariant holds, or a detail
  /// string describing the violation.
  using Check = std::function<std::optional<std::string>()>;

  void add(std::string name, Check check) {
    checks_.push_back({std::move(name), std::move(check)});
  }

  std::size_t size() const { return checks_.size(); }

  /// Runs every check; returns all violations (empty == all hold).
  std::vector<Violation> run_all() const {
    std::vector<Violation> violations;
    for (const auto& [name, check] : checks_) {
      if (auto detail = check()) {
        violations.push_back({name, *detail});
      }
    }
    return violations;
  }

 private:
  struct Named {
    std::string name;
    Check check;
  };
  std::vector<Named> checks_;
};

// ---- Built-in checks ------------------------------------------------------

/// Ledger cost conservation: for every subsystem, the global totals equal
/// the sum over all trace rows — integer counters exactly, floating-point
/// counters to relative 1e-6 (they are accumulated in a different order).
std::optional<std::string> check_ledger_conservation(
    const telemetry::CostLedger& ledger);

/// No Span is still open against the ledger (every bracket closed).
std::optional<std::string> check_no_open_spans(
    const telemetry::CostLedger& ledger);

/// pending() is exact: scheduling 3 far-future no-ops raises it by exactly
/// 3, cancelling restores it, and a second cancel of the same handle is
/// rejected.  The probe leaves the queue exactly as it found it.
std::optional<std::string> check_kernel_pending_exact(Simulator& simulator);

/// A sink tree built over the *current* topology is consistent: parent
/// pointers are acyclic and terminate at the sink, depths increase by
/// exactly one along tree edges, and every tree edge is connected() right
/// now.  Run after all faults heal, this is the "routing converges after
/// partitions heal" check.
std::optional<std::string> check_sink_tree_consistent(
    const net::Network& network, net::NodeId sink);

/// Every injected fault window has healed (active_count() == 0).
std::optional<std::string> check_chaos_quiescent(const ChaosEngine& engine);

}  // namespace pgrid::sim
