#include "sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pgrid::sim {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a(std::uint64_t digest, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    digest ^= (value >> shift) & 0xffull;
    digest *= kFnvPrime;
  }
  return digest;
}

}  // namespace

ShardMailbox::ShardMailbox(std::size_t regions)
    : regions_(static_cast<std::uint32_t>(regions)),
      next_seq_(regions + 1, 0) {}

void ShardMailbox::post(std::uint32_t src, std::uint32_t dst, SimTime at,
                        Simulator::Callback fn) {
  assert(src <= regions_ && dst < regions_ && "mailbox lane out of range");
  std::lock_guard lock(mutex_);
  pending_.push_back(
      CrossShardMessage{at.us, src, dst, next_seq_[src]++, std::move(fn)});
}

bool ShardMailbox::empty() const {
  std::lock_guard lock(mutex_);
  return pending_.empty();
}

std::size_t ShardMailbox::pending() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

std::size_t ShardMailbox::deliver_all(const std::vector<Simulator*>& regions,
                                      std::uint64_t& digest,
                                      std::uint64_t& violations) {
  std::vector<CrossShardMessage> batch;
  {
    std::lock_guard lock(mutex_);
    batch.swap(pending_);
  }
  if (batch.empty()) return 0;
  // Canonical exchange order: (deliver time, source region, source seq).
  // Every component is decided by the sender's deterministic execution, so
  // the order is invariant under the region-to-shard fold and under thread
  // scheduling inside a window.  Sort a compact key array, not the
  // messages themselves — message records carry a callback whose moves are
  // not free, and a busy barrier exchanges tens of thousands of them.
  struct Key {
    std::int64_t at_us;
    std::uint32_t src;
    std::uint64_t seq : 40;
    std::uint64_t index : 24;
  };
  std::vector<Key> order;
  order.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    assert(i < (1ull << 24) && "barrier batch exceeds key index width");
    order.push_back(Key{batch[i].at_us, batch[i].src, batch[i].seq, i});
  }
  std::sort(order.begin(), order.end(), [](const Key& a, const Key& b) {
    if (a.at_us != b.at_us) return a.at_us < b.at_us;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (const Key& key : order) {
    CrossShardMessage& message = batch[key.index];
    if (SimTime{message.at_us} < regions[message.dst]->now()) ++violations;
    digest = fnv1a(digest, static_cast<std::uint64_t>(message.at_us));
    digest = fnv1a(digest, (static_cast<std::uint64_t>(message.src) << 32) |
                               message.dst);
    digest = fnv1a(digest, message.seq);
    // schedule_at clamps a pre-barrier timestamp to the target's clock —
    // deterministically, because both inputs are shard-count-invariant.
    regions[message.dst]->schedule_at(SimTime{message.at_us},
                                      std::move(message.fn));
  }
  return batch.size();
}

LockstepWorld::LockstepWorld(ShardingConfig config,
                             std::vector<Simulator*> regions)
    : config_(config),
      regions_(std::move(regions)),
      mailbox_(regions_.size()),
      fired_(regions_.size(), 0) {
  assert(!regions_.empty());
  if (config_.shards == 0) config_.shards = 1;
  if (config_.window.us <= 0) config_.window = SimTime::microseconds(1);
}

bool LockstepWorld::next_event_time(SimTime& out) const {
  bool any = false;
  for (const Simulator* region : regions_) {
    if (region->pending() == 0) continue;
    const SimTime t = region->next_time();
    if (!any || t < out) out = t;
    any = true;
  }
  return any;
}

std::uint64_t LockstepWorld::run_window(SimTime end,
                                        common::ThreadPool* pool) {
  const std::size_t lanes = std::min(config_.shards, regions_.size());
  auto run_lane = [&](std::size_t lane) {
    // A lane advances its regions in ascending region order.  Regions are
    // mutually independent inside a window (cross-region effects ride the
    // mailbox), so the lane fold and the order within a lane are both
    // invisible to outcomes.
    for (std::size_t r = lane; r < regions_.size(); r += lanes) {
      fired_[r] = regions_[r]->run_until(end);
    }
  };
  if (pool != nullptr && config_.parallel && lanes > 1) {
    pool->parallel_for(lanes,
                       [&](std::size_t first, std::size_t last) {
                         for (std::size_t lane = first; lane < last; ++lane) {
                           run_lane(lane);
                         }
                       });
  } else {
    for (std::size_t lane = 0; lane < lanes; ++lane) run_lane(lane);
  }
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    // Fold (window end, region, fired) in region order: the digest then
    // witnesses every region's per-window cadence, not just the mailbox.
    if (fired_[r] != 0) {
      digest_ = fnv1a(digest_, static_cast<std::uint64_t>(end.us));
      digest_ = fnv1a(digest_, (static_cast<std::uint64_t>(r) << 32) |
                                   fired_[r]);
    }
    total += fired_[r];
    fired_[r] = 0;
  }
  return total;
}

LockstepStats LockstepWorld::run(common::ThreadPool* pool) {
  return run_until(SimTime{std::numeric_limits<std::int64_t>::max()}, pool);
}

LockstepStats LockstepWorld::run_until(SimTime deadline,
                                       common::ThreadPool* pool) {
  LockstepStats before = stats_;
  for (;;) {
    // Barrier: exchange everything posted during the last window.  The
    // next window's start is derived from global (shard-count-invariant)
    // state only.
    SimTime start{};
    const bool have_events = next_event_time(start);
    std::uint64_t violations = 0;
    const std::size_t delivered =
        mailbox_.deliver_all(regions_, digest_, violations);
    stats_.messages += delivered;
    stats_.lookahead_violations += violations;
    if (delivered > 0) continue;  // deliveries may have changed next_time
    if (!have_events || start > deadline) break;
    // Window [start, start + window], clamped to the deadline so callers
    // can interleave lockstep execution with external injection.
    SimTime end = start + config_.window;
    if (end > deadline) end = deadline;
    stats_.events += run_window(end, pool);
    ++stats_.windows;
  }
  // Idle regions' clocks advance in step with the fleet.
  if (deadline.us != std::numeric_limits<std::int64_t>::max()) {
    for (Simulator* region : regions_) region->run_until(deadline);
  }
  LockstepStats delta;
  delta.windows = stats_.windows - before.windows;
  delta.events = stats_.events - before.events;
  delta.messages = stats_.messages - before.messages;
  delta.lookahead_violations =
      stats_.lookahead_violations - before.lookahead_violations;
  return delta;
}

}  // namespace pgrid::sim
