// SPMD world partitioning: deterministic lockstep execution of spatially
// sharded sub-worlds over the slab-heap kernel.
//
// The paper targets city-scale pervasive-grid deployments; GloMoSim — the
// substrate the paper names in §3 — answered the same scaling problem with
// conservative parallel simulation over spatial partitions.  This module is
// that layer for our kernel: the world is split into *regions* (one per
// base-station coverage area), each region owns a full `Simulator` (its own
// slab + 4-ary heap from PR 2), and a `LockstepWorld` advances every region
// in bounded time windows.  Cross-region interactions (radio frames that
// cross a region boundary, wired backhaul, chaos faults targeting a remote
// region) never touch another region's queue directly: they are posted to a
// `ShardMailbox` and exchanged only at window boundaries, in the canonical
// (deliver-time, source-region, source-sequence) order.
//
// Determinism contract.  A region's trajectory is a pure function of its own
// initial state plus the timestamped message sequence it receives from the
// mailbox.  Because the mailbox orders deliveries canonically — a key that
// depends only on *what was sent*, never on which OS thread or shard lane
// ran the sender — the region-to-shard mapping is invisible to outcomes:
// running R regions on 1, 2 or 4 shards (or serially) produces bit-identical
// per-region event streams, NetworkStats and ledger totals.  The lockstep
// window doubles as the conservative lookahead bound: messages must be
// timestamped at or after the end of the window in which they were posted
// (violations are counted, and clamped deterministically).
//
// Why this also *speeds up* a single core: partitioning keeps each region's
// slab, heap and node state compact and hot (EXP-K1 measured the kernel's
// per-event cost roughly doubling from depth 256 to 16k — that curve is the
// cache, not the algorithm).  Parallel shard lanes then multiply the win on
// multi-core hosts; on a single core the lanes simply interleave.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace pgrid::sim {

/// Lockstep knobs.  The default (1 shard) is the kill switch: everything
/// runs on one lane, byte-identical to serial region-by-region execution —
/// and code that never constructs a LockstepWorld is untouched entirely.
struct ShardingConfig {
  /// Worker lanes regions are folded onto (region r runs on lane
  /// r % shards).  1 = single-lane lockstep; the mapping is a pure fold, so
  /// outcomes are identical for every value.
  std::size_t shards = 1;
  /// Lockstep window width = the conservative lookahead bound.  Cross-region
  /// messages posted during a window must be timestamped >= the window's
  /// end; keep this at or below the minimum cross-region latency
  /// (backhaul delay, boundary radio propagation).
  SimTime window = SimTime::milliseconds(5);
  /// Run shard lanes on a thread pool when one is supplied to run().
  bool parallel = true;
};

/// One cross-region message: deliver `fn` into region `dst` at `at`.
/// The (at, src, seq) triple is the canonical exchange key.
struct CrossShardMessage {
  std::int64_t at_us = 0;
  std::uint32_t src = 0;  ///< source region; region_count() for control lane
  std::uint32_t dst = 0;
  std::uint64_t seq = 0;  ///< per-source monotone counter
  Simulator::Callback fn;
};

/// Boundary-exchange statistics (also the bit-identity witnesses the
/// property tests compare across shard counts).
struct LockstepStats {
  std::uint64_t windows = 0;         ///< barriers executed
  std::uint64_t events = 0;          ///< events fired across all regions
  std::uint64_t messages = 0;        ///< cross-region messages delivered
  std::uint64_t lookahead_violations = 0;  ///< msgs timestamped before the
                                           ///< barrier they were delivered at
};

/// Thread-safe cross-region mailbox.  post() may be called from any shard
/// lane while a window executes; deliver_all() runs at the barrier on the
/// coordinating thread and injects every pending message into its target
/// region's queue in canonical (at, src, seq) order.
class ShardMailbox {
 public:
  /// `regions` source lanes plus one control lane (index == regions) for
  /// out-of-band injectors (chaos targeting a remote shard, remote query
  /// entry points).
  explicit ShardMailbox(std::size_t regions);

  std::uint32_t control_lane() const { return regions_; }

  /// Posts a message from region `src` (or the control lane).  The
  /// per-source sequence number is taken under the lock, so a source's
  /// posts are totally ordered no matter which thread runs its region.
  void post(std::uint32_t src, std::uint32_t dst, SimTime at,
            Simulator::Callback fn);

  bool empty() const;
  std::size_t pending() const;

  /// Drains every pending message into the target simulators, canonically
  /// ordered.  A message timestamped before its target region's clock —
  /// i.e. one the kernel's schedule_at must clamp, because the sender broke
  /// the lookahead bound (window width <= message latency) — counts as a
  /// lookahead violation.  Both the timestamp and the target clock at a
  /// barrier are shard-count-invariant, so the count (and the clamp) are
  /// too.  Returns delivered count; folds each delivery into `digest`
  /// (FNV-1a over the canonical keys).
  std::size_t deliver_all(const std::vector<Simulator*>& regions,
                          std::uint64_t& digest, std::uint64_t& violations);

 private:
  std::uint32_t regions_;
  mutable std::mutex mutex_;
  std::vector<CrossShardMessage> pending_;
  std::vector<std::uint64_t> next_seq_;  ///< regions_ + 1 lanes
};

/// Advances a set of region simulators in deterministic lockstep windows.
/// Regions are non-owning: the runtimes (or benches) that built them keep
/// ownership; the world only drives and exchanges.
class LockstepWorld {
 public:
  LockstepWorld(ShardingConfig config, std::vector<Simulator*> regions);

  std::size_t region_count() const { return regions_.size(); }
  Simulator& region(std::size_t r) { return *regions_[r]; }
  const ShardingConfig& config() const { return config_; }

  /// Posts a cross-region message from region `src`.  Call from inside an
  /// executing event of region `src` (any shard lane) or from the
  /// coordinating thread between runs.
  void post(std::uint32_t src, std::uint32_t dst, SimTime at,
            Simulator::Callback fn) {
    mailbox_.post(src, dst, at, std::move(fn));
  }

  /// Control-lane post: injection from outside any region (chaos faults
  /// aimed at a remote shard, external query arrival).
  void post_control(std::uint32_t dst, SimTime at, Simulator::Callback fn) {
    mailbox_.post(mailbox_.control_lane(), dst, at, std::move(fn));
  }

  /// Runs lockstep windows until every region's queue is empty and the
  /// mailbox has drained.  With `pool` and config.parallel, shard lanes run
  /// concurrently (one task per lane); otherwise lanes run in order on the
  /// calling thread.  Either way the result is bit-identical.
  LockstepStats run(common::ThreadPool* pool = nullptr);

  /// Runs windows until every region reaches `deadline` (and the mailbox
  /// holds nothing at or before it); idle regions' clocks advance in step.
  LockstepStats run_until(SimTime deadline, common::ThreadPool* pool = nullptr);

  /// Cumulative stats across run() calls.
  const LockstepStats& stats() const { return stats_; }

  /// Order witness: FNV-1a over every boundary exchange's canonical key and
  /// every window's per-region fire counts, folded in region order.  Equal
  /// digests across shard counts mean the window barriers, the mailbox
  /// order and every region's event cadence matched exactly.
  std::uint64_t order_digest() const { return digest_; }

  /// Earliest pending event time across regions; false when all drained.
  bool next_event_time(SimTime& out) const;

 private:
  /// One window: [start, start + window].  Returns events fired.
  std::uint64_t run_window(SimTime end, common::ThreadPool* pool);

  ShardingConfig config_;
  std::vector<Simulator*> regions_;
  ShardMailbox mailbox_;
  LockstepStats stats_;
  std::uint64_t digest_ = 1469598103934665603ull;  // FNV-1a offset basis
  std::vector<std::uint64_t> fired_;  ///< per-region scratch, one window
};

}  // namespace pgrid::sim
