#include "sim/simulator.hpp"

#include "common/log.hpp"

namespace pgrid::sim {

EventHandle Simulator::schedule(SimTime delay, Callback fn) {
  if (delay.us < 0) delay = SimTime::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, trace_, std::move(fn)});
  return EventHandle{id};
}

bool Simulator::cancel(EventHandle handle) {
  if (handle.id == 0 || handle.id >= next_id_) return false;
  return cancelled_.insert(handle.id).second;
}

void Simulator::set_trace_context(std::uint64_t trace) {
  trace_ = trace;
  // Keep log lines correlatable with ledger rows (PGRID_LOG prefixes the
  // active trace id).
  common::set_log_trace(trace);
}

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (cancelled_.erase(event.id) > 0) continue;
    out = std::move(event);
    return true;
  }
  return false;
}

void Simulator::fire(Event& event) {
  const std::uint64_t saved = trace_;
  set_trace_context(event.trace);
  event.fn();
  set_trace_context(saved);
}

std::size_t Simulator::run() {
  std::size_t processed = 0;
  Event event;
  while (pop_next(event)) {
    now_ = event.when;
    fire(event);
    ++processed;
  }
  return processed;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t processed = 0;
  Event event;
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) break;
    if (!pop_next(event)) break;
    if (event.when > deadline) {
      // Re-queue: pop_next skipped cancelled entries and may have surfaced a
      // later event than the one we peeked.
      queue_.push(std::move(event));
      break;
    }
    now_ = event.when;
    fire(event);
    ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

bool Simulator::step() {
  Event event;
  if (!pop_next(event)) return false;
  now_ = event.when;
  fire(event);
  return true;
}

void Simulator::clear() {
  queue_ = {};
  cancelled_.clear();
}

}  // namespace pgrid::sim
