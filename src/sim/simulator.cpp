#include "sim/simulator.hpp"

#include <algorithm>

namespace pgrid::sim {

EventHandle Simulator::schedule(SimTime delay, Callback fn) {
  if (delay.us < 0) delay = SimTime::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  const std::uint32_t slot = prepare_slot(when);
  record_at(slot).fn = std::move(fn);
  return finish_schedule(slot, when);
}

bool Simulator::cancel(EventHandle handle) {
  const std::uint32_t slot = static_cast<std::uint32_t>(handle.id);
  const std::uint32_t generation =
      static_cast<std::uint32_t>(handle.id >> 32);
  if (generation == 0 || slot >= slab_size_) return false;
  EventRecord& record = record_at(slot);
  // A released slot bumps its generation, so handles for fired, cancelled,
  // or cleared events fail this check even after the slot is reused.
  if (record.generation != generation || heap_index_[slot] == kNotInHeap) {
    return false;
  }
  heap_remove(heap_index_[slot]);
  record.fn.reset();
  release_slot(slot);
  return true;
}

void Simulator::renumber_sequences() {
  // Order-preserving compaction of the 40-bit seq space: relative seq order
  // is untouched, so (when, seq) comparisons — and therefore every heap
  // position — are unchanged.
  std::vector<std::uint32_t> order(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    order[i] = static_cast<std::uint32_t>(physical_of(i));
  }
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return entry_at(a).seq_slot < entry_at(b).seq_slot;
            });
  std::uint64_t next = 0;
  for (const std::uint32_t physical : order) {
    HeapEntry& entry = entry_at(physical);
    entry.seq_slot = (next++ << 24) | (entry.seq_slot & kSlotMask);
  }
  next_seq_ = next;
}

void Simulator::sift_down(std::size_t physical, const HeapEntry& entry) {
  const std::size_t last = last_physical();
  for (;;) {
    const std::size_t child_group = physical == 0 ? 1 : physical - 2;
    const std::size_t first_child = child_group * 4;
    if (first_child > last) break;
#if defined(__GNUC__)
    // The four grandchild groups are contiguous (groups first_child - 2 ..
    // first_child + 1); warm them while the tournament below runs.
    if (first_child + 1 < groups_.size()) {
      __builtin_prefetch(&groups_[first_child - 2]);
      __builtin_prefetch(&groups_[first_child - 1]);
      __builtin_prefetch(&groups_[first_child]);
      __builtin_prefetch(&groups_[first_child + 1]);
    }
#endif
    // Branch-light 4-way tournament over one cache line; lanes past the
    // live tail hold +inf sentinels and can never win.
    const HeapEntry* lane = groups_[child_group].lane;
    const std::size_t b01 = entry_less_flat(lane[1], lane[0]) ? 1 : 0;
    const std::size_t b23 = entry_less_flat(lane[3], lane[2]) ? 3 : 2;
    const std::size_t best = entry_less(lane[b23], lane[b01]) ? b23 : b01;
    const HeapEntry winner = lane[best];
    if (!entry_less(winner, entry)) break;
    place(physical, winner);
    physical = first_child + best;
  }
  place(physical, entry);
}

void Simulator::heap_remove(std::size_t physical) {
  const std::size_t last = last_physical();
  const HeapEntry moved = entry_at(last);
  entry_at(last) = kSentinel;
  --count_;
  if (physical == last) return;  // removed the tail entry
  sift_up(physical, moved);
  sift_down(heap_index_[moved.slot()], moved);
}

std::size_t Simulator::run() {
  std::size_t processed = 0;
  while (count_ > 0) {
    fire_top();
    ++processed;
  }
  return processed;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t processed = 0;
  while (count_ > 0 && entry_at(0).when_us <= deadline.us) {
    fire_top();
    ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

void Simulator::clear() {
  for (std::size_t i = 0; i < count_; ++i) {
    HeapEntry& entry = entry_at(physical_of(i));
    record_at(entry.slot()).fn.reset();
    release_slot(entry.slot());
    entry = kSentinel;
  }
  count_ = 0;
}

}  // namespace pgrid::sim
