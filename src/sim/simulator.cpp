#include "sim/simulator.hpp"

#include <algorithm>

namespace pgrid::sim {

EventHandle Simulator::schedule(SimTime delay, Callback fn) {
  if (delay.us < 0) delay = SimTime::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return EventHandle{id};
}

bool Simulator::cancel(EventHandle handle) {
  if (handle.id == 0 || handle.id >= next_id_) return false;
  if (std::find(cancelled_.begin(), cancelled_.end(), handle.id) !=
      cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(handle.id);
  ++cancelled_count_;
  return true;
}

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), event.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_count_;
      continue;
    }
    out = std::move(event);
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t processed = 0;
  Event event;
  while (pop_next(event)) {
    now_ = event.when;
    event.fn();
    ++processed;
  }
  return processed;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t processed = 0;
  Event event;
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) break;
    if (!pop_next(event)) break;
    if (event.when > deadline) {
      // Re-queue: pop_next skipped cancelled entries and may have surfaced a
      // later event than the one we peeked.
      queue_.push(std::move(event));
      break;
    }
    now_ = event.when;
    event.fn();
    ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

bool Simulator::step() {
  Event event;
  if (!pop_next(event)) return false;
  now_ = event.when;
  event.fn();
  return true;
}

void Simulator::clear() {
  queue_ = {};
  cancelled_.clear();
  cancelled_count_ = 0;
}

}  // namespace pgrid::sim
