// Deterministic discrete-event simulation kernel.
//
// This is the substrate stand-in for GloMoSim [31], which the paper extended
// to simulate dynamic service composition.  Events at equal timestamps fire
// in scheduling order (a monotone sequence number breaks ties), so a run is
// a pure function of its seed and inputs.
//
// Hot-path layout: event records live in a slab (std::vector with a
// free list), callbacks are small-buffer-optimized SmallFn values stored in
// the record, and an index-tracked 4-ary min-heap of (time, seq) keys —
// sibling groups aligned to cache lines — orders firing.  Heap sifts move
// 16-byte keys, never callbacks; cancellation is a
// true O(log n) removal (no tombstones), so pending() is exact and a handle
// for a fired event is reliably rejected; steady-state schedule/fire cycles
// reuse slab slots and perform zero allocations.
//
// The kernel also propagates an opaque *trace context* (a uint64, used by
// the telemetry layer as the active TraceId) along causal chains: an event
// captures the context current when it was scheduled and re-establishes it
// while it runs, so asynchronous continuations inherit the trace of the
// activity that spawned them without any plumbing in the callbacks.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/small_fn.hpp"
#include "sim/time.hpp"

namespace pgrid::sim {

/// Handle used to cancel a scheduled event.  Encodes the slab slot and the
/// slot's generation at scheduling time, so a handle goes stale the moment
/// its event fires, is cancelled, or is cleared — even if the slot has been
/// reused since.  A zero (default) handle is never valid.
struct EventHandle {
  std::uint64_t id = 0;
};

/// Event-queue simulator.  Single-threaded by design: determinism is a core
/// requirement for the partitioning study (same seed -> same trace).
class Simulator {
 public:
  /// Inline buffer sized for the capture sets the subsystems actually
  /// schedule (a couple of shared_ptrs plus a completion std::function);
  /// larger captures transparently spill to the heap.
  using Callback = common::SmallFn<void(), 64>;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after now. Negative delays clamp to 0.
  EventHandle schedule(SimTime delay, Callback fn);

  /// Schedules `fn` at an absolute time (clamped to now).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Emplace overloads: a lambda (or any callable) is constructed directly
  /// in the slab record — no intermediate Callback, no relocate.  These win
  /// overload resolution for raw callables; the Callback overloads above
  /// still take pre-built values.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventHandle schedule(SimTime delay, F&& fn) {
    if (delay.us < 0) delay = SimTime::zero();
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventHandle schedule_at(SimTime when, F&& fn) {
    const std::uint32_t slot = prepare_slot(when);
    record_at(slot).fn.emplace(std::forward<F>(fn));
    return finish_schedule(slot, when);
  }

  /// Cancels a pending event; returns false if it already fired, was
  /// cancelled, or was dropped by clear().
  bool cancel(EventHandle handle);

  /// Runs until the queue is empty.  Returns events processed.
  std::size_t run();

  /// Runs events with time <= deadline; leaves later events queued and
  /// advances now() to the deadline.
  std::size_t run_until(SimTime deadline);

  /// Runs at most one event; returns false if the queue was empty.
  bool step();

  /// Exact count of live (scheduled, not yet fired or cancelled) events.
  std::size_t pending() const { return count_; }

  /// Timestamp of the earliest pending event; pending() must be > 0.  The
  /// lockstep sharding layer (sim/shard.hpp) uses this to pick window
  /// boundaries without popping.
  SimTime next_time() const {
    assert(count_ > 0);
    return SimTime{entry_at(0).when_us};
  }

  /// Drops all pending events (used between independent experiment runs).
  /// Handles issued before the clear are invalidated, and their slots are
  /// recycled for new events.
  void clear();

  /// The opaque context (telemetry TraceId) new events inherit; restored
  /// around each event the kernel fires.
  std::uint64_t trace_context() const { return trace_; }
  void set_trace_context(std::uint64_t trace);

 private:
  static constexpr std::uint32_t kNotInHeap = 0xffffffff;

  /// Slab-resident event.  `generation` starts at 1 and is bumped every
  /// time the slot is released, so stale handles never alias a reused slot.
  /// The ordering key (when, seq) lives in the heap entry and the slot's
  /// heap position in the dense side array heap_index_ (16 slots per cache
  /// line), so sifts never dereference these records.  Records live in
  /// fixed-size chunks whose addresses never move, so the fire path invokes
  /// callbacks in place — no per-event move to the stack — even when the
  /// callback schedules and grows the slab.
  struct EventRecord {
    std::uint64_t trace = 0;
    std::uint32_t generation = 1;
    Callback fn;
  };

  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = 1ull << kChunkShift;

  /// Heap node, packed to 16 bytes so a sift touches as few cache lines as
  /// possible: the timestamp plus (seq << 24 | slot).  Slots are bounded by
  /// kMaxPending; seq is 40 bits and renumbered compactly before it can
  /// wrap, so comparing the packed word under equal timestamps compares
  /// scheduling order (seqs are unique — the slot bits never decide).
  struct HeapEntry {
    std::int64_t when_us;
    std::uint64_t seq_slot;

    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & kSlotMask);
    }
  };

  /// One 4-ary sibling group per cache line.  Physical node p lives in
  /// groups_[p >> 2].lane[p & 3]; the root is physical 0, lanes 1..3 of
  /// group 0 and every lane past the live tail hold +inf sentinels, so the
  /// 4-way child tournament always reads a full, resident line and never
  /// branches on group occupancy.  Children of p occupy group p - 2 (the
  /// root's occupy group 1), so a sift touches exactly one line per level
  /// and the four grandchild groups are contiguous — prefetchable.
  struct alignas(64) HeapGroup {
    HeapEntry lane[4];
  };

  static constexpr std::uint64_t kSlotMask = (1ull << 24) - 1;
  /// Concurrent-pending-event bound from the 24 slot bits.
  static constexpr std::size_t kMaxPending = 1ull << 24;
  /// Renumber threshold for the 40 seq bits.
  static constexpr std::uint64_t kMaxSeq = 1ull << 40;

  static constexpr HeapEntry kSentinel{
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::uint64_t>::max()};

  /// Short-circuit lexicographic (when, seq) compare.  Deliberately branchy:
  /// a fully branch-free descent measured ~20% slower because predicted
  /// branches let the next level's loads issue speculatively, while cmov
  /// serializes the address chain.
  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.when_us != b.when_us) return a.when_us < b.when_us;
    return a.seq_slot < b.seq_slot;
  }

  /// Branch-free variant for the intra-group pair compares of the 4-way
  /// tournament: those results only select a lane (setcc arithmetic, no
  /// jump), which halves the ~50%-mispredicted branches per level while the
  /// final compare stays branchy so the descent path is still speculated.
  static bool entry_less_flat(const HeapEntry& a, const HeapEntry& b) {
    return (a.when_us < b.when_us) |
           ((a.when_us == b.when_us) & (a.seq_slot < b.seq_slot));
  }

  EventRecord& record_at(std::uint32_t slot) {
    return slab_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  HeapEntry& entry_at(std::size_t physical) {
    return groups_[physical >> 2].lane[physical & 3];
  }
  const HeapEntry& entry_at(std::size_t physical) const {
    return groups_[physical >> 2].lane[physical & 3];
  }
  /// Physical index of the i-th live entry in heap fill order (0, 4, 5, ...).
  static std::size_t physical_of(std::size_t i) { return i == 0 ? 0 : i + 3; }
  /// Physical index of the last live entry; count_ must be > 0.
  std::size_t last_physical() const { return physical_of(count_ - 1); }

  void place(std::size_t physical, const HeapEntry& entry) {
    entry_at(physical) = entry;
    heap_index_[entry.slot()] = static_cast<std::uint32_t>(physical);
  }
  void sift_up(std::size_t physical, const HeapEntry& entry);
  void sift_down(std::size_t physical, const HeapEntry& entry);
  void heap_push(const HeapEntry& entry);
  void heap_remove(std::size_t physical);
  /// Removes the root (earliest) entry.
  void heap_pop_root();

  /// Clamps `when` to now, renumbers seqs if near wrap, acquires a slot.
  std::uint32_t prepare_slot(SimTime& when);
  /// Records the trace context, pushes the heap key, returns the handle.
  EventHandle finish_schedule(std::uint32_t slot, SimTime when);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  /// Compacts pending seqs to 0..n-1 (order-preserving, so heap positions
  /// are unchanged); runs once per 2^40 scheduled events.
  void renumber_sequences();

  /// Pops the earliest event, releases its slot (so nested scheduling can
  /// reuse it and slab growth never invalidates live references), and runs
  /// the callback under its captured trace context.
  void fire_top();

  std::vector<std::unique_ptr<EventRecord[]>> slab_;  // stable-address chunks
  std::size_t slab_size_ = 0;                         // slots handed out
  std::vector<std::uint32_t> heap_index_;  // slot -> physical heap position
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapGroup> groups_;  // index-tracked 4-ary min-heap
  std::size_t count_ = 0;          // live heap entries
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t trace_ = 0;
};

/// Establishes `trace` as the kernel's trace context for the current scope
/// and restores the previous context on exit.  The fire path and the
/// telemetry layer's TraceScope share this one save/restore mechanism.
class TraceContextGuard {
 public:
  TraceContextGuard(Simulator& simulator, std::uint64_t trace)
      : sim_(simulator), saved_(simulator.trace_context()) {
    sim_.set_trace_context(trace);
  }
  ~TraceContextGuard() { sim_.set_trace_context(saved_); }
  TraceContextGuard(const TraceContextGuard&) = delete;
  TraceContextGuard& operator=(const TraceContextGuard&) = delete;

 private:
  Simulator& sim_;
  std::uint64_t saved_;
};

// ---- Hot-path definitions -------------------------------------------------
//
// The per-event cycle (schedule -> sift -> fire) is defined inline here so a
// caller's TU can fold it into its loop; pushing these out of line costs an
// indirect-call round trip per event that is measurable at L1-resident queue
// depths.  Cold paths — cancel, clear, renumbering, the run loops — stay in
// simulator.cpp.

inline void Simulator::set_trace_context(std::uint64_t trace) {
  if (trace == trace_) return;
  trace_ = trace;
  // Keep log lines correlatable with ledger rows (PGRID_LOG prefixes the
  // active trace id).  The kernel is the only writer of the log trace.
  common::set_log_trace(trace);
}

inline std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  assert(slab_size_ < kMaxPending && "too many concurrent pending events");
  if ((slab_size_ >> kChunkShift) == slab_.size()) {
    slab_.push_back(std::make_unique<EventRecord[]>(kChunkSize));
  }
  heap_index_.push_back(kNotInHeap);
  return static_cast<std::uint32_t>(slab_size_++);
}

inline void Simulator::release_slot(std::uint32_t slot) {
  ++record_at(slot).generation;
  heap_index_[slot] = kNotInHeap;
  free_slots_.push_back(slot);
}

inline std::uint32_t Simulator::prepare_slot(SimTime& when) {
  if (when < now_) when = now_;
  if (next_seq_ >= kMaxSeq) renumber_sequences();
  return acquire_slot();
}

inline EventHandle Simulator::finish_schedule(std::uint32_t slot,
                                              SimTime when) {
  EventRecord& record = record_at(slot);
  record.trace = trace_;
  heap_push(HeapEntry{when.us, (next_seq_++ << 24) | slot});
  return EventHandle{(static_cast<std::uint64_t>(record.generation) << 32) |
                     slot};
}

inline void Simulator::sift_up(std::size_t physical, const HeapEntry& entry) {
  while (physical != 0) {
    // Children of physical node p form group p - 2 (the root's form group
    // 1), so the parent of anything in group g >= 2 is node g + 2.
    const std::size_t group = physical >> 2;
    const std::size_t parent = group == 1 ? 0 : group + 2;
    const HeapEntry above = entry_at(parent);
    if (!entry_less(entry, above)) break;
    place(physical, above);
    physical = parent;
  }
  place(physical, entry);
}

inline void Simulator::heap_push(const HeapEntry& entry) {
  const std::size_t physical = physical_of(count_);
  if ((physical >> 2) >= groups_.size()) {
    groups_.push_back(HeapGroup{{kSentinel, kSentinel, kSentinel, kSentinel}});
  }
  ++count_;
  sift_up(physical, entry);
}

inline void Simulator::heap_pop_root() {
  const std::size_t last = last_physical();
  const HeapEntry moved = entry_at(last);
  entry_at(last) = kSentinel;
  --count_;
  if (count_ == 0) return;
  // Floyd's pop: walk the hole to the bottom promoting the best child of
  // every level unconditionally — the descent's only branch is the
  // perfectly-predicted loop bound, not a data-dependent exit compare —
  // then bubble the moved tail entry up from the leaf hole (it was already
  // bottom-tier, so it rises O(1) levels in expectation).
  const std::size_t bottom = last_physical();
  // Prefetching grandchild groups only pays once the heap outgrows L1;
  // below that every group is already resident and the prefetches are pure
  // issue-slot overhead on the descent's critical path.
  const bool deep = count_ > 2048;
  std::size_t hole = 0;
  for (;;) {
    const std::size_t child_group = hole == 0 ? 1 : hole - 2;
    const std::size_t first_child = child_group * 4;
    if (first_child > bottom) break;
#if defined(__GNUC__)
    // The four grandchild groups are contiguous (groups first_child - 2 ..
    // first_child + 1); warm them while the tournament below runs.
    if (deep && first_child + 1 < groups_.size()) {
      __builtin_prefetch(&groups_[first_child - 2]);
      __builtin_prefetch(&groups_[first_child - 1]);
      __builtin_prefetch(&groups_[first_child]);
      __builtin_prefetch(&groups_[first_child + 1]);
    }
#endif
    // Branch-light 4-way tournament over one cache line; lanes past the
    // live tail hold +inf sentinels and can never win.
    const HeapEntry* lane = groups_[child_group].lane;
    const std::size_t b01 = entry_less_flat(lane[1], lane[0]) ? 1 : 0;
    const std::size_t b23 = entry_less_flat(lane[3], lane[2]) ? 3 : 2;
    const std::size_t best = entry_less(lane[b23], lane[b01]) ? b23 : b01;
    place(hole, lane[best]);
    hole = first_child + best;
  }
  sift_up(hole, moved);
}

inline void Simulator::fire_top() {
  const HeapEntry root = entry_at(0);
  const std::uint32_t slot = root.slot();
  now_ = SimTime{root.when_us};
  heap_pop_root();
  // Mark not-in-heap before invoking so a callback cancelling its own
  // (now firing) handle is told no.  The record's chunk address is stable,
  // so the callback runs in place — it may schedule (growing the slab) or
  // clear() freely; the slot itself stays acquired until after the call.
  heap_index_[slot] = kNotInHeap;
  EventRecord& record = record_at(slot);
  {
    TraceContextGuard guard(*this, record.trace);
    record.fn();
  }
  record.fn.reset();
  release_slot(slot);
}

inline bool Simulator::step() {
  if (count_ == 0) return false;
  fire_top();
  return true;
}

}  // namespace pgrid::sim
