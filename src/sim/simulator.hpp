// Deterministic discrete-event simulation kernel.
//
// This is the substrate stand-in for GloMoSim [31], which the paper extended
// to simulate dynamic service composition.  Events at equal timestamps fire
// in scheduling order (a monotone sequence number breaks ties), so a run is
// a pure function of its seed and inputs.
//
// The kernel also propagates an opaque *trace context* (a uint64, used by
// the telemetry layer as the active TraceId) along causal chains: an event
// captures the context current when it was scheduled and re-establishes it
// while it runs, so asynchronous continuations inherit the trace of the
// activity that spawned them without any plumbing in the callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace pgrid::sim {

/// Handle used to cancel a scheduled event.
struct EventHandle {
  std::uint64_t id = 0;
};

/// Event-queue simulator.  Single-threaded by design: determinism is a core
/// requirement for the partitioning study (same seed -> same trace).
class Simulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after now. Negative delays clamp to 0.
  EventHandle schedule(SimTime delay, Callback fn);

  /// Schedules `fn` at an absolute time (clamped to now).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled.
  bool cancel(EventHandle handle);

  /// Runs until the queue is empty.  Returns events processed.
  std::size_t run();

  /// Runs events with time <= deadline; leaves later events queued and
  /// advances now() to the deadline.
  std::size_t run_until(SimTime deadline);

  /// Runs at most one event; returns false if the queue was empty.
  bool step();

  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  /// Drops all pending events (used between independent experiment runs).
  void clear();

  /// The opaque context (telemetry TraceId) new events inherit; restored
  /// around each event the kernel fires.
  std::uint64_t trace_context() const { return trace_; }
  void set_trace_context(std::uint64_t trace);

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
    std::uint64_t trace;
    Callback fn;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool pop_next(Event& out);
  void fire(Event& event);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t trace_ = 0;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace pgrid::sim
