// Simulated time.  Integer microseconds keep event ordering exact and make
// replays bit-identical; the GloMoSim substrate the paper extends has the
// same property.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace pgrid::sim {

/// A point (or span) of simulated time in integer microseconds.
struct SimTime {
  std::int64_t us = 0;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime microseconds(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime milliseconds(std::int64_t v) {
    return SimTime{v * 1000};
  }
  static constexpr SimTime seconds(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e6)};
  }

  double to_seconds() const { return static_cast<double>(us) * 1e-6; }
  double to_ms() const { return static_cast<double>(us) * 1e-3; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.us + b.us};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.us - b.us};
  }
  constexpr SimTime& operator+=(SimTime other) {
    us += other.us;
    return *this;
  }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;
};

inline std::string to_string(SimTime t) {
  return std::to_string(t.to_seconds()) + "s";
}

}  // namespace pgrid::sim
