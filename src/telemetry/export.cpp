#include "telemetry/export.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace pgrid::telemetry {

namespace {

/// Shortest round-trip formatting for doubles (max_digits10), trimming the
/// scientific noise a fixed precision would add to small energy values.
std::string num(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

void write_cost_json(std::ostream& out, const Cost& cost) {
  out << "{\"bytes\":" << cost.bytes << ",\"joules\":" << num(cost.joules)
      << ",\"ops\":" << num(cost.ops)
      << ",\"sim_seconds\":" << num(cost.sim_seconds)
      << ",\"count\":" << cost.count << "}";
}

void write_subsystems_json(std::ostream& out, const TraceCosts& costs) {
  out << "{";
  bool first = true;
  for (std::size_t i = 0; i < kSubsystemCount; ++i) {
    const auto subsystem = static_cast<Subsystem>(i);
    if (costs[subsystem].empty()) continue;
    if (!first) out << ",";
    first = false;
    out << json_quote(to_string(subsystem)) << ":";
    write_cost_json(out, costs[subsystem]);
  }
  out << "}";
}

void write_cost_csv(std::ostream& out, const std::string& trace,
                    const std::string& subsystem, const Cost& cost) {
  out << trace << ',' << subsystem << ',' << cost.bytes << ','
      << num(cost.joules) << ',' << num(cost.ops) << ','
      << num(cost.sim_seconds) << ',' << cost.count << '\n';
}

}  // namespace

std::string json_quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void write_csv(std::ostream& out, const CostLedger& ledger) {
  out << "trace,subsystem,bytes,joules,ops,sim_seconds,count\n";
  for (std::size_t i = 0; i < kSubsystemCount; ++i) {
    const auto subsystem = static_cast<Subsystem>(i);
    if (ledger.totals()[subsystem].empty()) continue;
    write_cost_csv(out, "total", to_string(subsystem),
                   ledger.totals()[subsystem]);
  }
  for (TraceId id : ledger.trace_ids()) {
    const TraceCosts costs = ledger.trace(id);
    for (std::size_t i = 0; i < kSubsystemCount; ++i) {
      const auto subsystem = static_cast<Subsystem>(i);
      if (costs[subsystem].empty()) continue;
      write_cost_csv(out, std::to_string(id), to_string(subsystem),
                     costs[subsystem]);
    }
  }
}

void write_json(std::ostream& out, const CostLedger& ledger) {
  out << "{\"totals\":";
  write_subsystems_json(out, ledger.totals());
  out << ",\"traces\":[";
  bool first = true;
  for (TraceId id : ledger.trace_ids()) {
    if (!first) out << ",";
    first = false;
    out << "{\"trace\":" << id << ",\"subsystems\":";
    write_subsystems_json(out, ledger.trace(id));
    out << "}";
  }
  out << "]}";
}

std::string to_csv(const CostLedger& ledger) {
  std::ostringstream out;
  write_csv(out, ledger);
  return out.str();
}

std::string to_json(const CostLedger& ledger) {
  std::ostringstream out;
  write_json(out, ledger);
  return out.str();
}

std::string to_json(const TraceCosts& costs) {
  std::ostringstream out;
  write_subsystems_json(out, costs);
  return out.str();
}

void JsonReport::add_series(const std::string& name,
                            const std::vector<std::string>& columns,
                            const std::vector<std::vector<std::string>>& rows) {
  series_.push_back(Series{name, columns, rows});
}

std::string JsonReport::str() const {
  std::ostringstream out;
  out << "{\"experiment\":" << json_quote(experiment_)
      << ",\"claim\":" << json_quote(claim_) << ",\"series\":[";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    if (s > 0) out << ",";
    const Series& series = series_[s];
    out << "{\"name\":" << json_quote(series.name) << ",\"columns\":[";
    for (std::size_t c = 0; c < series.columns.size(); ++c) {
      if (c > 0) out << ",";
      out << json_quote(series.columns[c]);
    }
    out << "],\"rows\":[";
    for (std::size_t r = 0; r < series.rows.size(); ++r) {
      if (r > 0) out << ",";
      out << "[";
      for (std::size_t c = 0; c < series.rows[r].size(); ++c) {
        if (c > 0) out << ",";
        out << json_quote(series.rows[r][c]);
      }
      out << "]";
    }
    out << "]}";
  }
  out << "]";
  if (!ledger_json_.empty()) out << ",\"telemetry\":" << ledger_json_;
  out << "}\n";
  return out.str();
}

}  // namespace pgrid::telemetry
