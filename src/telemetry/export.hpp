// Machine-readable views of the cost ledger, and the shared JSON report
// builder the bench binaries emit through (`--json` / PGRID_BENCH_JSON=1).
//
// JSON schema (ledger):
//   {"totals": {"<subsystem>": {"bytes":N,"joules":F,"ops":F,
//                               "sim_seconds":F,"count":N}, ...},
//    "traces": [{"trace":N, "subsystems": {"<subsystem>": {...}, ...}}]}
// Subsystems with all-zero counters are omitted.  CSV is one row per
// (trace, subsystem) pair plus `total` rows, same columns.
//
// JSON schema (bench report):
//   {"experiment":"<id>", "claim":"<claim>",
//    "series":[{"name":"<series>", "columns":[...],
//               "rows":[["cell",...], ...]}],
//    "telemetry": <ledger object, when attached>}
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace pgrid::telemetry {

/// Escapes a string for embedding in a JSON document (quotes included).
std::string json_quote(const std::string& text);

void write_csv(std::ostream& out, const CostLedger& ledger);
void write_json(std::ostream& out, const CostLedger& ledger);
std::string to_csv(const CostLedger& ledger);
std::string to_json(const CostLedger& ledger);

/// One trace's per-subsystem breakdown as a JSON object.
std::string to_json(const TraceCosts& costs);

/// Accumulates named tabular series and renders one JSON document; the
/// bench harness routes every experiment's output through this so each
/// binary has a human table mode and a machine mode with identical data.
class JsonReport {
 public:
  JsonReport(std::string experiment, std::string claim)
      : experiment_(std::move(experiment)), claim_(std::move(claim)) {}

  const std::string& experiment() const { return experiment_; }
  const std::string& claim() const { return claim_; }

  void add_series(const std::string& name,
                  const std::vector<std::string>& columns,
                  const std::vector<std::vector<std::string>>& rows);

  /// Attaches the deployment ledger; rendered under "telemetry".
  void attach_ledger(const CostLedger& ledger) { ledger_json_ = to_json(ledger); }

  std::string str() const;

 private:
  struct Series {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  std::string experiment_;
  std::string claim_;
  std::vector<Series> series_;
  std::string ledger_json_;
};

}  // namespace pgrid::telemetry
