#include "telemetry/telemetry.hpp"

namespace pgrid::telemetry {

std::string to_string(Subsystem subsystem) {
  switch (subsystem) {
    case Subsystem::kWireless: return "wireless";
    case Subsystem::kBackhaul: return "backhaul";
    case Subsystem::kGridCompute: return "grid-compute";
    case Subsystem::kAgentMessaging: return "agent-messaging";
    case Subsystem::kSensing: return "sensing";
    case Subsystem::kEdgeCompute: return "edge-compute";
    case Subsystem::kRuntime: return "runtime";
    case Subsystem::kChaos: return "chaos";
  }
  return "?";
}

}  // namespace pgrid::telemetry
