// Trace-scoped cost ledger: the single source of truth for what a query
// spent, and where.
//
// Section 4 of the paper compares *estimated vs actual* computation, data
// transfer, energy and response time per query.  Every layer that spends a
// resource (the radio, the backhaul, the grid scheduler, the agent
// platform, the executor) charges this ledger; per-query attribution rides
// on a TraceId that the simulation kernel propagates along causal event
// chains, so asynchronous continuations inherit the trace of the event
// that scheduled them.  Spans are RAII brackets stamped with simulated
// time.  Exporters (export.hpp) turn the ledger into CSV/JSON.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace pgrid::telemetry {

/// Identifies one end-to-end query (or any other attributable activity).
/// Trace 0 is the ambient "untraced" bucket.
using TraceId = std::uint64_t;
inline constexpr TraceId kNoTrace = 0;

/// Where a cost was incurred.  The four the acceptance study needs
/// (wireless / backhaul / grid compute / agent messaging) plus the edge
/// hosts, in-network sensing, and the runtime envelope itself.
enum class Subsystem : std::uint8_t {
  kWireless = 0,      ///< radio transmissions (sensor net + edge wifi)
  kBackhaul,          ///< wired links (base <-> grid machines)
  kGridCompute,       ///< jobs on grid machines
  kAgentMessaging,    ///< envelope traffic at the agent platform layer
  kSensing,           ///< in-network sampling/aggregation rounds
  kEdgeCompute,       ///< base-station / handheld computation
  kRuntime,           ///< end-to-end query brackets
  kChaos,             ///< injected faults (chaos engine events)
};
inline constexpr std::size_t kSubsystemCount = 8;

std::string to_string(Subsystem subsystem);

/// One bundle of counters.  `bytes` counts transmitted payload bytes (per
/// link-layer attempt, matching NetworkStats::bytes_sent); `joules` is
/// battery energy actually drawn; `ops` are application-level operations
/// (flops for solves, merges for aggregation); `sim_seconds` accumulates
/// closed span durations; `count` tallies charge events (transmissions,
/// messages, closed spans).
struct Cost {
  std::uint64_t bytes = 0;
  double joules = 0.0;
  double ops = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t count = 0;

  Cost& operator+=(const Cost& other) {
    bytes += other.bytes;
    joules += other.joules;
    ops += other.ops;
    sim_seconds += other.sim_seconds;
    count += other.count;
    return *this;
  }
  Cost operator-(const Cost& other) const {
    Cost out;
    out.bytes = bytes - other.bytes;
    out.joules = joules - other.joules;
    out.ops = ops - other.ops;
    out.sim_seconds = sim_seconds - other.sim_seconds;
    out.count = count - other.count;
    return out;
  }
  bool empty() const {
    return bytes == 0 && joules == 0.0 && ops == 0.0 && sim_seconds == 0.0 &&
           count == 0;
  }
};

/// Per-subsystem costs of one trace (or of the whole run).
struct TraceCosts {
  std::array<Cost, kSubsystemCount> by_subsystem{};

  Cost& operator[](Subsystem s) {
    return by_subsystem[static_cast<std::size_t>(s)];
  }
  const Cost& operator[](Subsystem s) const {
    return by_subsystem[static_cast<std::size_t>(s)];
  }
  /// Sum over subsystems.  kAgentMessaging bytes are logical-layer copies
  /// of traffic already counted under wireless/backhaul, and kRuntime spans
  /// bracket the others, so prefer per-subsystem reads where double
  /// counting matters; `network_bytes()` is the physical-layer total.
  Cost total() const {
    Cost sum;
    for (const auto& c : by_subsystem) sum += c;
    return sum;
  }
  /// Physical bytes on links: wireless + backhaul.
  std::uint64_t network_bytes() const {
    return (*this)[Subsystem::kWireless].bytes +
           (*this)[Subsystem::kBackhaul].bytes;
  }
  TraceCosts operator-(const TraceCosts& other) const {
    TraceCosts out;
    for (std::size_t i = 0; i < kSubsystemCount; ++i) {
      out.by_subsystem[i] = by_subsystem[i] - other.by_subsystem[i];
    }
    return out;
  }
  TraceCosts& operator+=(const TraceCosts& other) {
    for (std::size_t i = 0; i < kSubsystemCount; ++i) {
      by_subsystem[i] += other.by_subsystem[i];
    }
    return *this;
  }
};

/// Hierarchical cost counters: global totals plus a row per trace.  One
/// ledger per Network (and therefore per deployment); what_if clones get
/// their own ledger, so trial runs never pollute the real one.
class CostLedger {
 public:
  explicit CostLedger(sim::Simulator& simulator) : sim_(simulator) {}

  CostLedger(const CostLedger&) = delete;
  CostLedger& operator=(const CostLedger&) = delete;

  sim::Simulator& simulator() { return sim_; }

  /// Allocates a fresh trace id (never reused, survives reset()).
  TraceId new_trace() { return next_trace_++; }

  /// The trace the simulation kernel is currently executing under.
  TraceId current_trace() const { return sim_.trace_context(); }

  /// Charges `cost` to `subsystem` under the active trace.
  void charge(Subsystem subsystem, const Cost& cost) {
    charge(subsystem, current_trace(), cost);
  }
  void charge(Subsystem subsystem, TraceId trace, const Cost& cost) {
    totals_[subsystem] += cost;
    by_trace_[trace][subsystem] += cost;
  }

  const TraceCosts& totals() const { return totals_; }
  Cost total() const { return totals_.total(); }

  /// Costs attributed to one trace (zero if the trace never charged).
  TraceCosts trace(TraceId trace) const {
    auto it = by_trace_.find(trace);
    return it == by_trace_.end() ? TraceCosts{} : it->second;
  }

  /// Moves `share` of the costs already attributed to `from` onto `to`.
  /// Global totals are untouched — this is per-subscriber attribution when
  /// one shared transmission serves many traces, not a new charge.  Each
  /// counter is clamped to what `from` actually holds, so a row can never
  /// go negative (unsigned counters would wrap) and the ledger stays
  /// conserved: sum over rows == totals, before and after.
  void reattribute(TraceId from, TraceId to, const TraceCosts& share) {
    if (from == to) return;
    TraceCosts& src = by_trace_[from];
    TraceCosts& dst = by_trace_[to];
    for (std::size_t i = 0; i < kSubsystemCount; ++i) {
      Cost moved = share.by_subsystem[i];
      Cost& avail = src.by_subsystem[i];
      moved.bytes = std::min(moved.bytes, avail.bytes);
      moved.count = std::min(moved.count, avail.count);
      moved.joules = std::min(moved.joules, avail.joules);
      moved.ops = std::min(moved.ops, avail.ops);
      moved.sim_seconds = std::min(moved.sim_seconds, avail.sim_seconds);
      avail = avail - moved;
      dst.by_subsystem[i] += moved;
    }
  }

  /// Traces with at least one charge, ascending (includes 0 if untraced
  /// activity occurred).
  std::vector<TraceId> trace_ids() const {
    std::vector<TraceId> ids;
    ids.reserve(by_trace_.size());
    for (const auto& [id, costs] : by_trace_) ids.push_back(id);
    return ids;
  }

  /// Spans currently open against this ledger (0 when quiescent).
  int open_spans() const { return open_spans_; }

  /// Clears all counters and trace rows; trace-id allocation continues
  /// monotonically so old ids never alias new queries.
  void reset() {
    totals_ = TraceCosts{};
    by_trace_.clear();
  }

 private:
  friend class Span;

  sim::Simulator& sim_;
  TraceCosts totals_;
  std::map<TraceId, TraceCosts> by_trace_;  // ordered => deterministic export
  TraceId next_trace_ = 1;
  int open_spans_ = 0;
};

/// Splits `total` into `n` shares that sum EXACTLY to `total`: integer
/// counters divide evenly with the remainder on the last share, and
/// floating counters give the last share the exact residual of the even
/// split — so reattributing every share out of a row drains it to zero and
/// conservation checks hold to the bit, not just to a tolerance.
inline std::vector<TraceCosts> split_even(const TraceCosts& total,
                                          std::size_t n) {
  std::vector<TraceCosts> shares(n);
  if (n == 0) return shares;
  for (std::size_t s = 0; s < kSubsystemCount; ++s) {
    const Cost& whole = total.by_subsystem[s];
    const std::uint64_t count = static_cast<std::uint64_t>(n);
    Cost even;
    even.bytes = whole.bytes / count;
    even.count = whole.count / count;
    even.joules = whole.joules / static_cast<double>(n);
    even.ops = whole.ops / static_cast<double>(n);
    even.sim_seconds = whole.sim_seconds / static_cast<double>(n);
    for (std::size_t i = 0; i + 1 < n; ++i) shares[i].by_subsystem[s] = even;
    Cost& last = shares[n - 1].by_subsystem[s];
    last.bytes = whole.bytes - even.bytes * (count - 1);
    last.count = whole.count - even.count * (count - 1);
    last.joules = whole.joules - even.joules * static_cast<double>(n - 1);
    last.ops = whole.ops - even.ops * static_cast<double>(n - 1);
    last.sim_seconds =
        whole.sim_seconds - even.sim_seconds * static_cast<double>(n - 1);
  }
  return shares;
}

/// Sets the simulation kernel's trace context for the current scope and
/// restores the previous one on exit.  Events scheduled inside the scope
/// inherit the trace, so the id follows the causal chain automatically.
/// Thin telemetry-typed wrapper over the kernel's own save/restore guard —
/// the same mechanism the fire path uses, so scope nesting and event
/// execution compose without special cases.
class TraceScope {
 public:
  TraceScope(sim::Simulator& simulator, TraceId trace)
      : guard_(simulator, trace) {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  sim::TraceContextGuard guard_;
};

/// RAII bracket stamped with simulated time.  On close (or destruction) it
/// charges {sim_seconds = elapsed, count = 1} to its subsystem under the
/// trace that was active when it opened.  Movable so asynchronous
/// completions can carry the span to the callback that closes it.
class Span {
 public:
  Span(CostLedger& ledger, Subsystem subsystem)
      : ledger_(&ledger),
        subsystem_(subsystem),
        trace_(ledger.current_trace()),
        started_(ledger.sim_.now()) {
    ++ledger_->open_spans_;
  }

  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      close();
      ledger_ = other.ledger_;
      subsystem_ = other.subsystem_;
      trace_ = other.trace_;
      started_ = other.started_;
      other.ledger_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { close(); }

  TraceId trace() const { return trace_; }
  bool open() const { return ledger_ != nullptr; }

  /// Records the elapsed simulated time; idempotent.
  void close() {
    if (!ledger_) return;
    Cost cost;
    cost.sim_seconds = (ledger_->sim_.now() - started_).to_seconds();
    cost.count = 1;
    ledger_->charge(subsystem_, trace_, cost);
    --ledger_->open_spans_;
    ledger_ = nullptr;
  }

 private:
  CostLedger* ledger_ = nullptr;
  Subsystem subsystem_ = Subsystem::kRuntime;
  TraceId trace_ = kNoTrace;
  sim::SimTime started_{};
};

}  // namespace pgrid::telemetry
