// Tests for adaptive continuous execution: per-epoch model choice, epoch
// observers feeding calibration, and a standing query that migrates to a
// better model as the learner's miscalibration washes out.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/runtime.hpp"

namespace pgrid {
namespace {

core::RuntimeConfig watch_config(std::size_t epochs) {
  core::RuntimeConfig config;
  config.sensors.sensor_count = 100;
  config.sensors.width_m = 150.0;
  config.sensors.height_m = 150.0;
  config.sensors.base_pos = {-5, -5, 0};
  config.sensors.noise_std = 0.0;
  config.advertise_sensor_services = false;
  config.continuous_epochs = epochs;
  return config;
}

TEST(Adaptive, EpochModelsRecordedAndConsistent) {
  core::PervasiveGridRuntime runtime(watch_config(4));
  const auto outcome = runtime.submit_and_run(
      "SELECT AVG(temp) FROM sensors EPOCH DURATION 10");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_EQ(outcome.epoch_models.size(), outcome.epochs.size());
  // With a well-calibrated start, every epoch picks the same (tree) model.
  for (auto model : outcome.epoch_models) {
    EXPECT_EQ(model, outcome.epoch_models.front());
  }
  EXPECT_EQ(outcome.model, outcome.epoch_models.back());
}

TEST(Adaptive, ForcedContinuousStillFeedsTheLearner) {
  core::PervasiveGridRuntime runtime(watch_config(5));
  const auto outcome = runtime.submit_and_run(
      "SELECT AVG(temp) FROM sensors EPOCH DURATION 10",
      partition::SolutionModel::kClusterAggregate);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(runtime.decision_maker().observations(
                query::QueryClass::kAggregate,
                partition::SolutionModel::kClusterAggregate),
            5u)
      << "one observation per epoch";
  // Per-epoch calibration ratios are ~1, not ~epochs (the summed-energy
  // feedback bug this design guards against).
  EXPECT_LT(runtime.decision_maker().energy_calibration(
                query::QueryClass::kAggregate,
                partition::SolutionModel::kClusterAggregate),
            2.0);
  EXPECT_GT(runtime.decision_maker().energy_calibration(
                query::QueryClass::kAggregate,
                partition::SolutionModel::kClusterAggregate),
            0.5);
}

TEST(Adaptive, StandingQueryMigratesOffAMiscalibratedModel) {
  // Seed the learner with a wildly optimistic belief about cluster
  // aggregation (someone's stale experience file): the watch starts on
  // cluster, real epochs correct the ratio, and the query migrates to the
  // genuinely cheaper tree model mid-flight.
  core::PervasiveGridRuntime runtime(watch_config(10));
  runtime.decision_maker().restore_calibration(
      query::QueryClass::kAggregate,
      partition::SolutionModel::kClusterAggregate,
      /*energy_ratio_mean=*/0.01, /*energy_count=*/1,
      /*response_ratio_mean=*/1.0, /*response_count=*/1);

  const auto outcome = runtime.submit_and_run(
      "SELECT AVG(temp) FROM sensors EPOCH DURATION 10");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_EQ(outcome.epoch_models.size(), 10u);
  EXPECT_EQ(outcome.epoch_models.front(),
            partition::SolutionModel::kClusterAggregate)
      << "starts on the (seeded) cheap-looking model";
  EXPECT_EQ(outcome.epoch_models.back(),
            partition::SolutionModel::kTreeAggregate)
      << "migrates once the real ratios wash the seed out";
  // The migration is monotone: cluster prefix, then tree suffix.
  bool switched = false;
  for (auto model : outcome.epoch_models) {
    if (model == partition::SolutionModel::kTreeAggregate) switched = true;
    if (switched) {
      EXPECT_EQ(model, partition::SolutionModel::kTreeAggregate);
    }
  }
}

TEST(Adaptive, ExecutorAdaptiveApiDirectly) {
  core::PervasiveGridRuntime runtime(watch_config(6));
  auto ctx = runtime.execution_context();
  auto parsed = query::parse_query(
      "SELECT MAX(temp) FROM sensors EPOCH DURATION 5");
  ASSERT_TRUE(parsed.ok());
  const auto cls = runtime.classifier().classify(parsed.value());

  // Alternate models by epoch parity; count observer invocations.
  std::vector<partition::SolutionModel> seen;
  std::vector<partition::ActualCost> epochs;
  std::vector<partition::SolutionModel> models;
  partition::execute_continuous_adaptive(
      ctx, parsed.value(), cls, 6,
      [](std::size_t epoch) {
        return epoch % 2 == 0 ? partition::SolutionModel::kTreeAggregate
                              : partition::SolutionModel::kAllToBase;
      },
      [&](std::size_t, partition::SolutionModel model,
          const partition::ActualCost& actual) {
        seen.push_back(model);
        EXPECT_TRUE(actual.ok);
      },
      [&](std::vector<partition::ActualCost> r,
          std::vector<partition::SolutionModel> m) {
        epochs = std::move(r);
        models = std::move(m);
      });
  runtime.simulator().run();

  ASSERT_EQ(epochs.size(), 6u);
  ASSERT_EQ(models.size(), 6u);
  ASSERT_EQ(seen.size(), 6u);
  for (std::size_t e = 0; e < 6; ++e) {
    const auto expected = e % 2 == 0
                              ? partition::SolutionModel::kTreeAggregate
                              : partition::SolutionModel::kAllToBase;
    EXPECT_EQ(models[e], expected);
    EXPECT_EQ(seen[e], expected);
  }
  // Alternating models measurably alternate energy (raw >> tree).
  EXPECT_GT(epochs[1].energy_j, epochs[0].energy_j * 2);
}

}  // namespace
}  // namespace pgrid
