// Unit tests for the Ronin-style agent framework: envelopes, attributes,
// platform messaging, request/response, and the three deputy behaviours.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "agent/platform.hpp"
#include "net/churn.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace pgrid::agent {
namespace {

using net::LinkClass;
using net::NodeConfig;
using net::NodeId;
using net::NodeKind;

class AgentFixture : public ::testing::Test {
 protected:
  AgentFixture() : net_(sim_, common::Rng(7)), platform_(net_) {}

  NodeId add_node(double x, double y,
                  LinkClass radio = LinkClass::wifi()) {
    NodeConfig c;
    c.pos = {x, y, 0.0};
    c.radio = radio;
    c.unlimited_energy = true;
    return net_.add_node(c);
  }

  /// Registers a recorder agent that stores what it receives.
  LambdaAgent* add_recorder(const std::string& name, NodeId node,
                            std::vector<Envelope>* received,
                            std::unique_ptr<AgentDeputy> deputy = nullptr) {
    auto agent = std::make_unique<LambdaAgent>(
        name, node, [received](LambdaAgent&, const Envelope& env) {
          received->push_back(env);
        });
    auto* raw = agent.get();
    platform_.register_agent(std::move(agent), std::move(deputy));
    return raw;
  }

  sim::Simulator sim_;
  net::Network net_;
  AgentPlatform platform_;
};

TEST(Envelope, WireSizeCountsFields) {
  Envelope e;
  e.content_type = "abcd";     // 4
  e.ontology = "xy";           // 2
  e.payload = "0123456789";    // 10
  EXPECT_EQ(e.wire_size(), 48u + 16u);
}

TEST(Envelope, MakeReplySwapsAndThreads) {
  Envelope original;
  original.sender = 1;
  original.receiver = 2;
  original.conversation_id = 55;
  original.reply_with = 99;
  original.ontology = "pgrid";
  auto reply = make_reply(original, Performative::kInform, "result");
  EXPECT_EQ(reply.sender, 2u);
  EXPECT_EQ(reply.receiver, 1u);
  EXPECT_EQ(reply.conversation_id, 55u);
  EXPECT_EQ(reply.in_reply_to, 99u);
  EXPECT_EQ(reply.ontology, "pgrid");
  EXPECT_EQ(reply.payload, "result");
}

TEST(Envelope, PerformativeNames) {
  EXPECT_EQ(to_string(Performative::kAdvertise), "advertise");
  EXPECT_EQ(to_string(Performative::kQueryRef), "query-ref");
  EXPECT_EQ(to_string(Performative::kFailure), "failure");
}

TEST_F(AgentFixture, RegisterAssignsIdsAndRoles) {
  const auto node = add_node(0, 0);
  std::vector<Envelope> inbox;
  auto* agent = add_recorder("alpha", node, &inbox);
  agent->attributes().insert(AgentRole::kBroker);
  agent->domain_attributes()["domain"] = "weather";

  EXPECT_NE(agent->id(), kInvalidAgent);
  EXPECT_EQ(platform_.find(agent->id()), agent);
  EXPECT_EQ(platform_.find_by_name("alpha"), agent);
  EXPECT_TRUE(agent->has_role(AgentRole::kBroker));
  EXPECT_FALSE(agent->has_role(AgentRole::kPlanner));
  EXPECT_EQ(platform_.agents_with_role(AgentRole::kBroker).size(), 1u);
  EXPECT_EQ(agent->domain_attributes().at("domain"), "weather");
}

TEST_F(AgentFixture, SendDeliversBetweenNodes) {
  const auto a = add_node(0, 0);
  const auto b = add_node(50, 0);
  std::vector<Envelope> inbox;
  auto* sender = add_recorder("sender", a, &inbox);
  auto* receiver = add_recorder("receiver", b, &inbox);

  Envelope env;
  env.sender = sender->id();
  env.receiver = receiver->id();
  env.performative = Performative::kInform;
  env.payload = "hello";
  bool ok = false;
  platform_.send(env, [&](bool delivered) { ok = delivered; });
  sim_.run();

  EXPECT_TRUE(ok);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].payload, "hello");
  EXPECT_EQ(platform_.stats().delivered, 1u);
}

TEST_F(AgentFixture, SendToUnknownAgentFails) {
  const auto a = add_node(0, 0);
  std::vector<Envelope> inbox;
  auto* sender = add_recorder("s", a, &inbox);
  Envelope env;
  env.sender = sender->id();
  env.receiver = 424242;
  bool result = true;
  platform_.send(env, [&](bool delivered) { result = delivered; });
  sim_.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(platform_.stats().failed, 1u);
}

TEST_F(AgentFixture, SendFailsAcrossPartition) {
  const auto a = add_node(0, 0);
  const auto b = add_node(5000, 0);  // out of wifi range, no wired link
  std::vector<Envelope> inbox;
  auto* s = add_recorder("s", a, &inbox);
  auto* r = add_recorder("r", b, &inbox);
  Envelope env;
  env.sender = s->id();
  env.receiver = r->id();
  bool result = true;
  platform_.send(env, [&](bool delivered) { result = delivered; });
  sim_.run();
  EXPECT_FALSE(result);
  EXPECT_TRUE(inbox.empty());
}

TEST_F(AgentFixture, MultiHopDelivery) {
  // Chain of wifi nodes 80 m apart (range 100): 0-1-2-3.
  std::vector<NodeId> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(add_node(80.0 * i, 0));
  std::vector<Envelope> inbox;
  auto* s = add_recorder("s", nodes[0], &inbox);
  auto* r = add_recorder("r", nodes[3], &inbox);
  Envelope env;
  env.sender = s->id();
  env.receiver = r->id();
  env.payload = "via hops";
  platform_.send(env);
  sim_.run();
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_GT(net_.node(nodes[1]).tx_bytes, 0u) << "intermediate forwarded";
}

TEST_F(AgentFixture, RequestGetsReply) {
  const auto a = add_node(0, 0);
  const auto b = add_node(50, 0);
  std::vector<Envelope> unused;
  auto* client = add_recorder("client", a, &unused);
  auto responder = std::make_unique<LambdaAgent>(
      "responder", b, [this](LambdaAgent& self, const Envelope& env) {
        self.platform()->send(make_reply(env, Performative::kInform, "42"));
      });
  const auto responder_id = platform_.register_agent(std::move(responder));

  Envelope env;
  env.sender = client->id();
  env.receiver = responder_id;
  env.performative = Performative::kRequest;
  env.payload = "what is the answer";
  std::string answer;
  platform_.request(env, sim::SimTime::seconds(10.0),
                    [&](common::Result<Envelope> result) {
                      ASSERT_TRUE(result.ok());
                      answer = result.value().payload;
                    });
  sim_.run();
  EXPECT_EQ(answer, "42");
}

TEST_F(AgentFixture, RequestTimesOutWhenNoReply) {
  const auto a = add_node(0, 0);
  const auto b = add_node(50, 0);
  std::vector<Envelope> sink;
  auto* client = add_recorder("client", a, &sink);
  auto* silent = add_recorder("silent", b, &sink);

  Envelope env;
  env.sender = client->id();
  env.receiver = silent->id();
  env.performative = Performative::kRequest;
  bool failed = false;
  platform_.request(env, sim::SimTime::seconds(2.0),
                    [&](common::Result<Envelope> result) {
                      failed = !result.ok();
                    });
  sim_.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(platform_.stats().timed_out, 1u);
  EXPECT_EQ(sink.size(), 1u) << "silent agent still received the request";
}

TEST_F(AgentFixture, RequestFailsFastWhenUndeliverable) {
  const auto a = add_node(0, 0);
  const auto b = add_node(9999, 0);
  std::vector<Envelope> sink;
  auto* client = add_recorder("client", a, &sink);
  auto* far = add_recorder("far", b, &sink);
  Envelope env;
  env.sender = client->id();
  env.receiver = far->id();
  std::string error;
  platform_.request(env, sim::SimTime::seconds(30.0),
                    [&](common::Result<Envelope> result) {
                      error = result.error();
                    });
  sim_.run();
  EXPECT_EQ(error, "request undeliverable");
  // No timeout should also fire later.
  EXPECT_EQ(platform_.stats().timed_out, 0u);
}

TEST_F(AgentFixture, UnregisteredAgentStopsReceiving) {
  const auto a = add_node(0, 0);
  const auto b = add_node(50, 0);
  std::vector<Envelope> inbox;
  auto* s = add_recorder("s", a, &inbox);
  auto* r = add_recorder("r", b, &inbox);
  const auto receiver_id = r->id();
  Envelope env;
  env.sender = s->id();
  env.receiver = receiver_id;
  platform_.send(env);
  platform_.unregister_agent(receiver_id);
  sim_.run();
  EXPECT_TRUE(inbox.empty());
}

TEST_F(AgentFixture, StoreAndForwardSurvivesDisconnection) {
  const auto a = add_node(0, 0);
  const auto b = add_node(50, 0);
  std::vector<Envelope> inbox;
  auto* s = add_recorder("s", a, &inbox);
  auto* r = add_recorder("r", b, &inbox,
                         std::make_unique<StoreAndForwardDeputy>(
                             sim::SimTime::seconds(1.0),
                             sim::SimTime::seconds(60.0)));
  // Receiver node is down when the message is sent; comes back at t=5.
  net_.set_node_up(b, false);
  Envelope env;
  env.sender = s->id();
  env.receiver = r->id();
  env.payload = "queued";
  bool ok = false;
  platform_.send(env, [&](bool delivered) { ok = delivered; });
  sim_.schedule(sim::SimTime::seconds(5.0), [&] { net_.set_node_up(b, true); });
  sim_.run();
  EXPECT_TRUE(ok);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].payload, "queued");
  EXPECT_GE(sim_.now().to_seconds(), 5.0);
}

TEST_F(AgentFixture, StoreAndForwardGivesUpAfterDeadline) {
  const auto a = add_node(0, 0);
  const auto b = add_node(50, 0);
  std::vector<Envelope> inbox;
  auto* s = add_recorder("s", a, &inbox);
  auto* r = add_recorder("r", b, &inbox,
                         std::make_unique<StoreAndForwardDeputy>(
                             sim::SimTime::seconds(1.0),
                             sim::SimTime::seconds(3.0)));
  net_.set_node_up(b, false);  // never comes back
  Envelope env;
  env.sender = s->id();
  env.receiver = r->id();
  bool result = true;
  platform_.send(env, [&](bool delivered) { result = delivered; });
  sim_.run();
  EXPECT_FALSE(result);
  EXPECT_TRUE(inbox.empty());
}

TEST_F(AgentFixture, StoreAndForwardGiveUpFiresOnceAtDeadlineUnderChurn) {
  // Regression: the give-up event must fire done(false) exactly once AT the
  // deadline even when the target crashes and restarts mid-retry.  The old
  // retry loop reported failure from whichever retry straddled the
  // deadline, so a node death between retries could delay — or with an
  // unlucky interleave repeat — the failure report.
  const auto a = add_node(0, 0);
  const auto b = add_node(5000, 0);  // permanently out of radio range
  std::vector<Envelope> inbox;
  auto* s = add_recorder("s", a, &inbox);
  auto* r = add_recorder("r", b, &inbox,
                         std::make_unique<StoreAndForwardDeputy>(
                             sim::SimTime::seconds(0.5),
                             sim::SimTime::seconds(3.0)));
  // The target flaps throughout the retry window.
  net::ChurnConfig churn_config;
  churn_config.mean_up = sim::SimTime::seconds(0.4);
  churn_config.mean_down = sim::SimTime::seconds(0.4);
  churn_config.horizon = sim::SimTime::seconds(6.0);
  net::NodeChurn churn(net_, {b}, churn_config, common::Rng(17));
  churn.start();

  Envelope env;
  env.sender = s->id();
  env.receiver = r->id();
  int done_count = 0;
  bool last_result = true;
  sim::SimTime done_at{};
  platform_.send(env, [&](bool delivered) {
    ++done_count;
    last_result = delivered;
    done_at = sim_.now();
  });
  sim_.run();

  EXPECT_EQ(done_count, 1) << "done must fire exactly once";
  EXPECT_FALSE(last_result);
  EXPECT_EQ(done_at, sim::SimTime::seconds(3.0))
      << "failure reports AT the deadline, not at whichever retry tripped it";
  EXPECT_GT(churn.transitions(), 0u) << "the churn actually flapped the node";
  EXPECT_TRUE(inbox.empty());
}

TEST_F(AgentFixture, StoreAndForwardRetriesBackOffExponentially) {
  const auto a = add_node(0, 0);
  const auto b = add_node(50, 0);
  std::vector<Envelope> inbox;
  auto* s = add_recorder("s", a, &inbox);
  auto deputy = std::make_unique<StoreAndForwardDeputy>(
      sim::SimTime::seconds(0.5), sim::SimTime::seconds(8.0));
  auto* deputy_raw = deputy.get();
  auto* r = add_recorder("r", b, &inbox, std::move(deputy));
  net_.set_node_up(b, false);  // never comes back

  Envelope env;
  env.sender = s->id();
  env.receiver = r->id();
  bool result = true;
  sim::SimTime done_at{};
  platform_.send(env, [&](bool delivered) {
    result = delivered;
    done_at = sim_.now();
  });
  sim_.run();

  EXPECT_FALSE(result);
  EXPECT_EQ(done_at, sim::SimTime::seconds(8.0));
  // Doubling intervals: attempts at t=0, 0.5, 1.5, 3.5, 7.5 — the next
  // (15.5) would land past the deadline, so the retry loop stops and lets
  // the give-up event report.  A fixed 0.5 s cadence would try 16 times.
  EXPECT_EQ(deputy_raw->attempts(), 5u);
}

TEST_F(AgentFixture, DirectDeputyFailsImmediatelyWhenDown) {
  const auto a = add_node(0, 0);
  const auto b = add_node(50, 0);
  std::vector<Envelope> inbox;
  auto* s = add_recorder("s", a, &inbox);
  auto* r = add_recorder("r", b, &inbox);  // direct deputy by default
  net_.set_node_up(b, false);
  Envelope env;
  env.sender = s->id();
  env.receiver = r->id();
  bool result = true;
  platform_.send(env, [&](bool delivered) { result = delivered; });
  sim_.run();
  EXPECT_FALSE(result);
  EXPECT_LT(sim_.now().to_seconds(), 0.5) << "no retries for direct deputy";
}

TEST_F(AgentFixture, TranscodingDeputyShrinksOverThinLinks) {
  // Sensor-radio first hop (38.4 kbps < 1 Mbps threshold) triggers
  // transcoding; payload charged at half size.
  const auto a = add_node(0, 0, LinkClass::sensor_radio());
  const auto b = add_node(20, 0, LinkClass::sensor_radio());
  std::vector<Envelope> inbox;
  auto* s = add_recorder("s", a, &inbox);
  auto deputy = std::make_unique<TranscodingDeputy>(1e6, 0.5);
  auto* deputy_raw = deputy.get();
  auto* r = add_recorder("r", b, &inbox, std::move(deputy));

  Envelope env;
  env.sender = s->id();
  env.receiver = r->id();
  env.payload = std::string(1000, 'x');
  platform_.send(env);
  sim_.run();

  EXPECT_EQ(deputy_raw->transcoded_count(), 1u);
  ASSERT_EQ(inbox.size(), 1u);
  // Charged bytes = header (48) + 500 instead of 1048.
  EXPECT_EQ(net_.node(a).tx_bytes, 548u);
}

TEST_F(AgentFixture, TranscodingDeputyLeavesFatLinksAlone) {
  const auto a = add_node(0, 0, LinkClass::wifi());
  const auto b = add_node(50, 0, LinkClass::wifi());
  std::vector<Envelope> inbox;
  auto* s = add_recorder("s", a, &inbox);
  auto deputy = std::make_unique<TranscodingDeputy>(1e6, 0.5);
  auto* deputy_raw = deputy.get();
  auto* r = add_recorder("r", b, &inbox, std::move(deputy));
  Envelope env;
  env.sender = s->id();
  env.receiver = r->id();
  env.payload = std::string(1000, 'x');
  platform_.send(env);
  sim_.run();
  EXPECT_EQ(deputy_raw->transcoded_count(), 0u);
  EXPECT_EQ(net_.node(a).tx_bytes, 1048u);
}

TEST_F(AgentFixture, LocalDeliverySameNode) {
  const auto a = add_node(0, 0);
  std::vector<Envelope> inbox;
  auto* s = add_recorder("s", a, &inbox);
  auto* r = add_recorder("r", a, &inbox);
  Envelope env;
  env.sender = s->id();
  env.receiver = r->id();
  env.payload = "local";
  platform_.send(env);
  sim_.run();
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(net_.stats().transmissions, 0u) << "same-node needs no radio";
}

}  // namespace
}  // namespace pgrid::agent
