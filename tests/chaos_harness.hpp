// Chaos-runner harness: seeded scenarios over a full PervasiveGridRuntime
// deployment with a ChaosEngine armed, every invariant checked after the
// run drains, and — on failure — a replayable seed plus a greedily
// minimized fault schedule.
//
// Used by tests/chaos_test.cpp (sweeps + forced-violation reproduction),
// tests/property_chaos_test.cpp (determinism properties) and indirectly by
// the ci.sh chaos-smoke step.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "agent/deputy.hpp"
#include "agent/platform.hpp"
#include "core/runtime.hpp"
#include "sim/chaos.hpp"
#include "sim/invariants.hpp"

namespace chaos_harness {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  pgrid::sim::ChaosMix mix = pgrid::sim::ChaosMix::lossy_mesh();
  std::size_t fault_count = 12;
  double horizon_s = 120.0;
  std::size_t query_count = 4;
  std::size_t sensor_count = 16;
  /// Replay: arm exactly this schedule instead of generating one from the
  /// seed (minimization and reproduction paths).
  std::optional<pgrid::sim::Schedule> replay;
  /// Test-only sabotage hook: when a fault matching the predicate is
  /// applied, the harness corrupts its own exactly-once bookkeeping (as if
  /// a completion callback fired twice).  Exists to prove the pipeline —
  /// violation -> printed seed -> minimized schedule -> replay — works.
  std::function<bool(const pgrid::sim::Fault&)> sabotage;
};

struct ScenarioResult {
  pgrid::sim::Schedule schedule;      ///< the schedule that was armed
  std::vector<pgrid::sim::Violation> violations;
  std::size_t faults_injected = 0;
  std::size_t crash_transitions = 0;  ///< NodeChurn-style callbacks observed
  std::size_t queries_ok = 0;
  std::size_t queries_failed = 0;
  pgrid::net::NetworkStats net_stats;
  pgrid::telemetry::Cost ledger_total;
  double ledger_chaos_count = 0.0;

  bool passed() const { return violations.empty(); }
  std::string violation_text() const {
    std::ostringstream out;
    for (const auto& v : violations) {
      out << "  invariant '" << v.invariant << "': " << v.detail << "\n";
    }
    return out.str();
  }
};

/// One full scenario: build a small deployment, arm the chaos schedule,
/// drive queries and deputy pings through it, drain, check every invariant.
inline ScenarioResult run_scenario(const ScenarioConfig& config) {
  namespace sim = pgrid::sim;
  namespace net = pgrid::net;
  namespace agent = pgrid::agent;

  pgrid::core::RuntimeConfig rc;
  rc.seed = config.seed;
  rc.sensors.sensor_count = config.sensor_count;
  rc.sensors.width_m = 40.0;
  rc.sensors.height_m = 40.0;
  rc.advertise_sensor_services = false;  // keep startup light: 50+ scenarios
  pgrid::core::PervasiveGridRuntime runtime(rc);

  ScenarioResult result;
  sim::ChaosEngine engine(runtime.network(), config.seed);
  engine.set_transition_callback(
      [&](net::NodeId, bool) { ++result.crash_transitions; });

  // Exactly-once bookkeeping: each submitted query must complete exactly
  // once (either an answer or an error — never both, never twice).
  std::vector<int> completions(config.query_count, 0);
  bool sabotaged = false;
  if (config.sabotage) {
    engine.set_fault_applied_hook([&](const sim::Fault& fault) {
      if (!sabotaged && !completions.empty() && config.sabotage(fault)) {
        sabotaged = true;
        ++completions[0];  // simulate a double-fired completion
      }
    });
  }

  if (config.replay) {
    engine.arm_schedule(*config.replay);
  } else {
    sim::ChaosConfig cc;
    cc.horizon = sim::SimTime::seconds(config.horizon_s);
    cc.fault_count = config.fault_count;
    cc.mix = config.mix;
    engine.arm(cc);
  }
  result.schedule = engine.schedule();

  // Store-and-forward deputy exercise: a base-station agent pings a sensor
  // agent whose deputy queues across disconnections.  Retries are bounded
  // by give_up_after, so the queue must be empty once the run drains.
  auto& platform = runtime.agents();
  const net::NodeId base = runtime.sensors().base_station();
  const net::NodeId ping_node =
      runtime.sensors().sensors().empty() ? base
                                          : runtime.sensors().sensors().front();
  auto saf = std::make_unique<agent::StoreAndForwardDeputy>(
      sim::SimTime::seconds(0.5), sim::SimTime::seconds(10.0));
  agent::StoreAndForwardDeputy* saf_raw = saf.get();
  const agent::AgentId ponger = platform.register_agent(
      std::make_unique<agent::LambdaAgent>(
          "chaos-ponger", ping_node,
          [](agent::LambdaAgent&, const agent::Envelope&) {}),
      std::move(saf));
  const agent::AgentId pinger = platform.register_agent(
      std::make_unique<agent::LambdaAgent>(
          "chaos-pinger", base,
          [](agent::LambdaAgent&, const agent::Envelope&) {}));

  auto& sim_kernel = runtime.simulator();
  const std::size_t ping_count = 1 + static_cast<std::size_t>(
                                         config.horizon_s / 15.0);
  for (std::size_t i = 0; i < ping_count; ++i) {
    sim_kernel.schedule(sim::SimTime::seconds(3.0 + 15.0 * double(i)), [&,
                                                                        i] {
      agent::Envelope ping;
      ping.sender = pinger;
      ping.receiver = ponger;
      ping.performative = agent::Performative::kInform;
      ping.content_type = "text/plain";
      ping.payload = "ping-" + std::to_string(i);
      platform.send(std::move(ping));
    });
  }

  // Queries staggered across the horizon so fault windows overlap them.
  const char* kQueries[] = {
      "SELECT AVG(temp) FROM sensors",
      "SELECT MAX(temp) FROM sensors",
      "SELECT COUNT(temp) FROM sensors",
      "SELECT MIN(temp) FROM sensors",
  };
  for (std::size_t i = 0; i < config.query_count; ++i) {
    const double at_s =
        2.0 + (config.horizon_s * 0.7) * double(i) /
                  double(std::max<std::size_t>(1, config.query_count));
    sim_kernel.schedule(sim::SimTime::seconds(at_s), [&, i] {
      runtime.submit(kQueries[i % 4], [&, i](pgrid::core::QueryOutcome out) {
        ++completions[i];
        if (out.ok) {
          ++result.queries_ok;
        } else {
          ++result.queries_failed;
        }
      });
    });
  }

  sim_kernel.run();

  result.faults_injected = engine.injected().size();
  result.net_stats = runtime.network().stats();
  result.ledger_total = runtime.telemetry().total();
  result.ledger_chaos_count = static_cast<double>(
      runtime.telemetry()
          .totals()[pgrid::telemetry::Subsystem::kChaos]
          .count);

  sim::InvariantRegistry registry;
  registry.add("ledger-conservation", [&] {
    return sim::check_ledger_conservation(runtime.telemetry());
  });
  registry.add("no-open-spans", [&] {
    return sim::check_no_open_spans(runtime.telemetry());
  });
  registry.add("kernel-pending-exact", [&] {
    return sim::check_kernel_pending_exact(runtime.simulator());
  });
  registry.add("sink-tree-consistent", [&] {
    return sim::check_sink_tree_consistent(runtime.network(), base);
  });
  registry.add("chaos-quiescent",
               [&] { return sim::check_chaos_quiescent(engine); });
  registry.add("query-exactly-once", [&]() -> std::optional<std::string> {
    for (std::size_t i = 0; i < completions.size(); ++i) {
      if (completions[i] != 1) {
        std::ostringstream out;
        out << "query " << i << " completed " << completions[i]
            << " time(s), expected exactly 1";
        return out.str();
      }
    }
    return std::nullopt;
  });
  registry.add("platform-conservation", [&]() -> std::optional<std::string> {
    const agent::PlatformStats& stats = platform.stats();
    if (stats.sent != stats.delivered + stats.failed) {
      std::ostringstream out;
      out << "platform sent " << stats.sent << " != delivered "
          << stats.delivered << " + failed " << stats.failed;
      return out.str();
    }
    return std::nullopt;
  });
  registry.add("deputy-retries-bounded", [&]() -> std::optional<std::string> {
    if (saf_raw->queued() != 0) {
      std::ostringstream out;
      out << saf_raw->queued()
          << " envelope(s) still queued in the store-and-forward deputy";
      return out.str();
    }
    return std::nullopt;
  });

  result.violations = registry.run_all();
  return result;
}

/// True when replaying `schedule` under `base` (same deployment seed) still
/// violates at least one invariant.
inline bool reproduces(const ScenarioConfig& base,
                       const pgrid::sim::Schedule& schedule) {
  ScenarioConfig replay = base;
  replay.replay = schedule;
  return !run_scenario(replay).passed();
}

/// Greedy ddmin-style schedule minimizer: repeatedly tries to remove chunks
/// (halving the chunk size down to single faults) while the violation still
/// reproduces.  Returns a schedule from which no single fault can be
/// removed without losing the failure.
inline pgrid::sim::Schedule minimize_schedule(const ScenarioConfig& base,
                                              pgrid::sim::Schedule failing) {
  std::size_t chunk = std::max<std::size_t>(1, failing.size() / 2);
  for (;;) {
    bool removed = false;
    std::size_t start = 0;
    while (start < failing.size()) {
      pgrid::sim::Schedule candidate;
      candidate.reserve(failing.size());
      for (std::size_t i = 0; i < failing.size(); ++i) {
        if (i < start || i >= start + chunk) candidate.push_back(failing[i]);
      }
      if (candidate.size() < failing.size() && reproduces(base, candidate)) {
        failing = std::move(candidate);
        removed = true;
        // Retry the same start offset: it now holds different faults.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed) break;
    chunk = std::max<std::size_t>(1, chunk / 2);
  }
  return failing;
}

/// The exact recipe a developer (or CI log reader) follows to reproduce a
/// failing scenario.
inline std::string replay_instructions(const ScenarioConfig& config,
                                       const pgrid::sim::Schedule& minimized) {
  std::ostringstream out;
  out << "chaos scenario FAILED: seed=" << config.seed << " mix="
      << config.mix.name << " faults=" << config.fault_count << "\n"
      << "replay with:\n"
      << "  PGRID_CHAOS_SEED=" << config.seed << " PGRID_CHAOS_MIX="
      << config.mix.name
      << " ./test_chaos --gtest_filter='ChaosReplay.ReplaySeed'\n"
      << "minimized schedule (" << minimized.size() << " fault(s)):\n"
      << pgrid::sim::format_schedule(minimized);
  return out.str();
}

}  // namespace chaos_harness
