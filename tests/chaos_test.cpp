// Chaos engine + invariant harness tests: deterministic schedule
// generation, fault semantics at the network layer, the seeded sweep the
// ci chaos-smoke step runs, and the forced-violation pipeline (violation ->
// printed seed -> minimized schedule -> replay).
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "chaos_harness.hpp"
#include "net/network.hpp"
#include "sim/chaos.hpp"
#include "sim/invariants.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace pgrid;

// ---- Schedule generation --------------------------------------------------

class ChaosScheduleTest : public ::testing::Test {
 protected:
  ChaosScheduleTest() : network_(sim_, common::Rng(7)) {
    for (int i = 0; i < 8; ++i) {
      net::NodeConfig cfg;
      cfg.pos = {10.0 * i, 0.0, 0.0};
      network_.add_node(cfg);
    }
  }

  sim::Simulator sim_;
  net::Network network_;
};

TEST_F(ChaosScheduleTest, SameSeedSameSchedule) {
  sim::ChaosConfig config;
  config.fault_count = 20;
  const auto a = sim::generate_schedule(network_, config, 99);
  const auto b = sim::generate_schedule(network_, config, 99);
  ASSERT_EQ(a.size(), 20u);
  EXPECT_EQ(a, b);
}

TEST_F(ChaosScheduleTest, DifferentSeedDifferentSchedule) {
  sim::ChaosConfig config;
  config.fault_count = 20;
  const auto a = sim::generate_schedule(network_, config, 99);
  const auto b = sim::generate_schedule(network_, config, 100);
  EXPECT_NE(a, b);
}

TEST_F(ChaosScheduleTest, SortedAndExpiresByHorizon) {
  sim::ChaosConfig config;
  config.fault_count = 40;
  config.mix = sim::ChaosMix::partition_storm();
  const auto schedule = sim::generate_schedule(network_, config, 5);
  ASSERT_EQ(schedule.size(), 40u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(schedule[i - 1].at, schedule[i].at);
    }
    EXPECT_LE(schedule[i].at + schedule[i].duration, config.horizon)
        << sim::format_fault(schedule[i]);
  }
}

TEST_F(ChaosScheduleTest, PartitionGroupsLeaveBothSidesNonEmpty) {
  sim::ChaosConfig config;
  config.fault_count = 60;
  config.mix = sim::ChaosMix::partition_storm();
  const auto schedule = sim::generate_schedule(network_, config, 11);
  bool saw_partition = false;
  for (const auto& fault : schedule) {
    if (fault.kind != sim::FaultKind::kPartition) continue;
    saw_partition = true;
    EXPECT_GE(fault.group.size(), 1u);
    EXPECT_LT(fault.group.size(), network_.size());
  }
  EXPECT_TRUE(saw_partition);
}

TEST(ChaosMixTest, CannedMixLookup) {
  EXPECT_EQ(sim::mix_by_name("lossy-mesh").name, "lossy-mesh");
  EXPECT_EQ(sim::canned_mixes().size(), 3u);
  EXPECT_THROW(sim::mix_by_name("no-such-mix"), std::out_of_range);
}

// ---- Engine fault semantics ----------------------------------------------

// Line topology a(0) - b(20) - c(40); sensor radio reaches 25 m, so a<->c
// only communicate through b.
class ChaosEngineTest : public ::testing::Test {
 protected:
  ChaosEngineTest() : network_(sim_, common::Rng(21)) {
    for (int i = 0; i < 3; ++i) {
      net::NodeConfig cfg;
      cfg.pos = {20.0 * i, 0.0, 0.0};
      network_.add_node(cfg);
    }
  }

  static sim::Fault make_fault(sim::FaultKind kind, double at_s,
                               double duration_s, net::NodeId node,
                               double magnitude = 0.0) {
    sim::Fault fault;
    fault.kind = kind;
    fault.at = sim::SimTime::seconds(at_s);
    fault.duration = sim::SimTime::seconds(duration_s);
    fault.node = node;
    fault.magnitude = magnitude;
    return fault;
  }

  sim::Simulator sim_;
  net::Network network_;
};

TEST_F(ChaosEngineTest, BlackoutSeversAndHeals) {
  sim::ChaosEngine engine(network_, 1);
  engine.arm_schedule({make_fault(sim::FaultKind::kBlackout, 1.0, 2.0, 1)});
  EXPECT_TRUE(network_.connected(0, 1));
  sim_.run_until(sim::SimTime::seconds(2.0));  // mid-window
  EXPECT_FALSE(network_.connected(0, 1));
  EXPECT_FALSE(network_.connected(1, 2));
  EXPECT_TRUE(network_.link_between(0, 1) == std::nullopt);
  EXPECT_EQ(engine.active_count(), 1u);
  sim_.run();
  EXPECT_TRUE(network_.connected(0, 1));
  EXPECT_TRUE(engine.quiescent());
  EXPECT_EQ(engine.injected().size(), 1u);
}

TEST_F(ChaosEngineTest, PartitionSeversExactlyAcrossTheCut) {
  sim::ChaosEngine engine(network_, 1);
  auto fault = make_fault(sim::FaultKind::kPartition, 1.0, 2.0, 0);
  fault.group = {0, 1};
  const std::uint64_t version_before = network_.topology_version();
  engine.arm_schedule({fault});
  sim_.run_until(sim::SimTime::seconds(2.0));
  EXPECT_TRUE(network_.connected(0, 1));   // same side
  EXPECT_FALSE(network_.connected(1, 2));  // across the cut
  EXPECT_GT(network_.topology_version(), version_before);
  sim_.run();
  EXPECT_TRUE(network_.connected(1, 2));
}

TEST_F(ChaosEngineTest, CrashRestartFiresTransitionsAndDrainsBattery) {
  sim::ChaosEngine engine(network_, 1);
  std::vector<std::pair<net::NodeId, bool>> transitions;
  engine.set_transition_callback([&](net::NodeId id, bool up) {
    transitions.emplace_back(id, up);
  });
  engine.arm_schedule(
      {make_fault(sim::FaultKind::kCrash, 1.0, 2.0, 1, 0.005)});
  sim_.run_until(sim::SimTime::seconds(2.0));
  EXPECT_FALSE(network_.alive(1));
  const double consumed_mid = network_.node(1).energy.consumed();
  sim_.run();
  EXPECT_TRUE(network_.alive(1));
  // Reboot state loss drained the configured joules.
  EXPECT_NEAR(network_.node(1).energy.consumed(), consumed_mid + 0.005, 1e-12);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], (std::pair<net::NodeId, bool>{1, false}));
  EXPECT_EQ(transitions[1], (std::pair<net::NodeId, bool>{1, true}));
}

TEST_F(ChaosEngineTest, DropWindowFailsTransmitsInsideWindowOnly) {
  sim::ChaosEngine engine(network_, 1);
  engine.arm_schedule(
      {make_fault(sim::FaultKind::kDrop, 0.0, 1.0, net::kInvalidNode, 1.0)});
  int delivered = -1;
  sim_.schedule(sim::SimTime::seconds(0.5), [&] {  // mid-window
    network_.transmit(0, 1, 64, [&](bool ok) { delivered = ok ? 1 : 0; });
  });
  sim_.run_until(sim::SimTime::seconds(0.9));
  EXPECT_EQ(delivered, 0);  // mag-1.0 drop window: payload always lost
  EXPECT_GT(network_.stats().dropped, 0u);
  int after = -1;
  sim_.schedule(sim::SimTime::seconds(1.5), [&] {  // window expired
    network_.transmit(0, 1, 64, [&](bool ok) { after = ok ? 1 : 0; });
  });
  sim_.run();
  EXPECT_EQ(after, 1);
}

TEST_F(ChaosEngineTest, DuplicateWindowDeliversTwiceAndCounts) {
  sim::ChaosEngine engine(network_, 1);
  engine.arm_schedule({make_fault(sim::FaultKind::kDuplicate, 0.0, 5.0,
                                  net::kInvalidNode, 1.0)});
  int calls = 0;
  sim_.schedule(sim::SimTime::seconds(1.0), [&] {  // mid-window
    network_.transmit(0, 1, 64, [&](bool) { ++calls; });
  });
  sim_.run();
  EXPECT_EQ(calls, 1);  // callback still fires once
  EXPECT_EQ(network_.stats().duplicated, 1u);
  // The duplicate burned receiver energy and an extra attempt.
  EXPECT_GE(network_.stats().transmissions, 2u);
}

TEST_F(ChaosEngineTest, ClockSkewOffsetsReportedTime) {
  sim::ChaosEngine engine(network_, 1);
  engine.arm_schedule(
      {make_fault(sim::FaultKind::kClockSkew, 1.0, 2.0, 2, -1.5)});
  sim_.run_until(sim::SimTime::seconds(2.0));
  EXPECT_DOUBLE_EQ(engine.clock_skew_s(2), -1.5);
  EXPECT_DOUBLE_EQ(engine.clock_skew_s(0), 0.0);
  EXPECT_DOUBLE_EQ(engine.report_time(2).to_seconds(), 0.5);
  sim_.run();
  EXPECT_DOUBLE_EQ(engine.clock_skew_s(2), 0.0);
}

TEST_F(ChaosEngineTest, FaultsChargeTheLedgerUnderTheirOwnTrace) {
  sim::ChaosEngine engine(network_, 1);
  engine.arm_schedule({make_fault(sim::FaultKind::kBlackout, 1.0, 2.0, 1),
                       make_fault(sim::FaultKind::kCrash, 2.0, 1.0, 2, 0.001)});
  sim_.run();
  ASSERT_EQ(engine.injected().size(), 2u);
  const auto& ledger = network_.telemetry();
  EXPECT_EQ(ledger.totals()[telemetry::Subsystem::kChaos].count, 2u);
  for (const auto& injected : engine.injected()) {
    EXPECT_NE(injected.trace, telemetry::kNoTrace);
    const auto row = ledger.trace(injected.trace);
    EXPECT_EQ(row[telemetry::Subsystem::kChaos].count, 1u);
  }
  EXPECT_FALSE(sim::check_ledger_conservation(ledger).has_value());
}

TEST_F(ChaosEngineTest, DetachesOnDestruction) {
  {
    sim::ChaosEngine engine(network_, 1);
    engine.arm_schedule({make_fault(sim::FaultKind::kBlackout, 1.0, 5.0, 1)});
    EXPECT_EQ(network_.fault_injector(), &engine);
    EXPECT_GT(sim_.pending(), 0u);
  }
  EXPECT_EQ(network_.fault_injector(), nullptr);
  EXPECT_EQ(sim_.pending(), 0u);  // armed events cancelled
  EXPECT_TRUE(network_.connected(0, 1));
}

// ---- Invariant registry ---------------------------------------------------

TEST(InvariantRegistryTest, ReportsEveryFailingCheckWithDetail) {
  sim::InvariantRegistry registry;
  registry.add("always-holds", [] { return std::nullopt; });
  registry.add("always-fails", [] {
    return std::optional<std::string>("observed 2, expected 1");
  });
  EXPECT_EQ(registry.size(), 2u);
  const auto violations = registry.run_all();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, "always-fails");
  EXPECT_EQ(violations[0].detail, "observed 2, expected 1");
}

TEST(InvariantRegistryTest, KernelProbeLeavesQueueUntouched) {
  sim::Simulator sim;
  const auto handle = sim.schedule(sim::SimTime::seconds(1.0), [] {});
  EXPECT_FALSE(sim::check_kernel_pending_exact(sim).has_value());
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_TRUE(sim.cancel(handle));
}

// ---- Seeded sweeps (the ci chaos-smoke workload) -------------------------

std::size_t seeds_per_mix() {
  if (const char* env = std::getenv("PGRID_CHAOS_SEEDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 17;  // 3 mixes x 17 = 51 scenarios by default
}

void sweep_mix(const sim::ChaosMix& mix) {
  const std::size_t seeds = seeds_per_mix();
  for (std::size_t i = 0; i < seeds; ++i) {
    chaos_harness::ScenarioConfig config;
    config.seed = 1000 + i * 7919;  // spread seeds; deterministic
    config.mix = mix;
    config.fault_count = 10;
    config.horizon_s = 60.0;
    const auto result = chaos_harness::run_scenario(config);
    if (!result.passed()) {
      const auto minimized =
          chaos_harness::minimize_schedule(config, result.schedule);
      ADD_FAILURE() << result.violation_text()
                    << chaos_harness::replay_instructions(config, minimized);
      return;  // one reproduction per sweep is enough signal
    }
    // Every query terminated (ok or failed — chaos may legitimately fail
    // queries, but none may hang).
    EXPECT_EQ(result.queries_ok + result.queries_failed, 4u);
    EXPECT_EQ(result.faults_injected, result.schedule.size());
  }
}

TEST(ChaosSweep, DisconnectionHeavy) {
  sweep_mix(sim::ChaosMix::disconnection_heavy());
}

TEST(ChaosSweep, LossyMesh) { sweep_mix(sim::ChaosMix::lossy_mesh()); }

TEST(ChaosSweep, PartitionStorm) {
  sweep_mix(sim::ChaosMix::partition_storm());
}

// ---- Forced violation: seed -> minimize -> replay -------------------------

TEST(ChaosForcedViolation, ReproducesFromSeedAndMinimizedSchedule) {
  chaos_harness::ScenarioConfig base;
  base.seed = 4242;
  base.mix = sim::ChaosMix::disconnection_heavy();
  base.fault_count = 12;
  base.horizon_s = 60.0;
  // Test-only sabotage: the first crash fault corrupts the harness's
  // exactly-once bookkeeping, standing in for a real double-completion bug.
  base.sabotage = [](const sim::Fault& fault) {
    return fault.kind == sim::FaultKind::kCrash;
  };

  const auto result = chaos_harness::run_scenario(base);
  ASSERT_FALSE(result.passed()) << "sabotage should trip an invariant";
  bool saw_exactly_once = false;
  for (const auto& v : result.violations) {
    if (v.invariant == "query-exactly-once") saw_exactly_once = true;
  }
  EXPECT_TRUE(saw_exactly_once) << result.violation_text();

  // The greedy minimizer strips every fault that is not needed to
  // reproduce; only the sabotage trigger (a single crash) should survive.
  const auto minimized =
      chaos_harness::minimize_schedule(base, result.schedule);
  ASSERT_EQ(minimized.size(), 1u)
      << sim::format_schedule(minimized);
  EXPECT_EQ(minimized[0].kind, sim::FaultKind::kCrash);
  EXPECT_TRUE(chaos_harness::reproduces(base, minimized));

  // Replaying from the printed seed alone (fresh config, schedule
  // regenerated) reproduces the same violation...
  chaos_harness::ScenarioConfig from_seed = base;
  const auto replayed = chaos_harness::run_scenario(from_seed);
  ASSERT_FALSE(replayed.passed());
  EXPECT_EQ(replayed.schedule, result.schedule);

  // ...and the instructions name the seed and the minimized schedule.
  const auto instructions =
      chaos_harness::replay_instructions(base, minimized);
  EXPECT_NE(instructions.find("seed=4242"), std::string::npos);
  EXPECT_NE(instructions.find("crash"), std::string::npos);
}

// ---- Replay entry point (driven by the printed instructions) -------------

TEST(ChaosReplay, ReplaySeed) {
  const char* seed_env = std::getenv("PGRID_CHAOS_SEED");
  if (!seed_env) {
    GTEST_SKIP() << "set PGRID_CHAOS_SEED (and optionally PGRID_CHAOS_MIX, "
                    "PGRID_CHAOS_FAULTS) to replay a failing scenario";
  }
  chaos_harness::ScenarioConfig config;
  config.seed = std::strtoull(seed_env, nullptr, 10);
  if (const char* mix_env = std::getenv("PGRID_CHAOS_MIX")) {
    config.mix = sim::mix_by_name(mix_env);
  }
  if (const char* faults_env = std::getenv("PGRID_CHAOS_FAULTS")) {
    config.fault_count =
        static_cast<std::size_t>(std::strtoul(faults_env, nullptr, 10));
  }
  config.horizon_s = 60.0;
  const auto result = chaos_harness::run_scenario(config);
  EXPECT_TRUE(result.passed())
      << result.violation_text() << "schedule:\n"
      << sim::format_schedule(result.schedule);
}

}  // namespace
