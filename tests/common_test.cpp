// Unit tests for pgrid::common — rng determinism, statistics, thread pool,
// tables, results.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>

#include "common/result.hpp"
#include "common/small_fn.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace pgrid::common {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.uniform01());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  Accumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.exponential(0.5));
  EXPECT_NEAR(acc.mean(), 2.0, 0.05);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent1(99);
  Rng parent2(99);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // Parent stream continues identically after the fork.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(parent1.next_u64(), parent2.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Accumulator, Empty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownValues) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(5);
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  a.add(2.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Percentiles, MedianAndTails) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_NEAR(p.median(), 50.5, 1e-9);
  EXPECT_NEAR(p.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(p.percentile(100.0), 100.0, 1e-9);
  EXPECT_NEAR(p.percentile(99.0), 99.01, 0.05);
}

TEST(Percentiles, EmptyIsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.percentile(50.0), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);   // clamps to bucket 0
  h.add(0.5);
  h.add(9.5);
  h.add(25.0);   // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_DOUBLE_EQ(h.edge(5), 5.0);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(1000, [&](std::size_t first, std::size_t last) {
    for (std::size_t i = first; i < last; ++i) touched[i].fetch_add(1);
  });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum{0};
  pool.parallel_for(1, [&](std::size_t first, std::size_t last) {
    sum += static_cast<int>(last - first);
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ThreadPool, SingleWorkerParallelForRunsInline) {
  ThreadPool pool(1);
  std::vector<int> touched(100, 0);
  pool.parallel_for(100, [&](std::size_t first, std::size_t last) {
    for (std::size_t i = first; i < last; ++i) ++touched[i];
  });
  for (int t : touched) EXPECT_EQ(t, 1);
}

TEST(ThreadPool, ParallelForFromWorkerDoesNotDeadlock) {
  // A worker that blocks on parallel_for futures served by its own queue
  // would deadlock a saturated pool; the pool degrades to inline execution
  // instead.
  ThreadPool pool(2);
  std::atomic<int> covered{0};
  std::vector<std::future<void>> outer;
  for (int t = 0; t < 4; ++t) {
    outer.push_back(pool.submit([&pool, &covered] {
      EXPECT_TRUE(pool.on_worker_thread());
      pool.parallel_for(64, [&covered](std::size_t first, std::size_t last) {
        covered += static_cast<int>(last - first);
      });
    }));
  }
  for (auto& f : outer) f.get();
  EXPECT_EQ(covered.load(), 4 * 64);
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(ThreadPool, ChunkIndexIsDeterministic) {
  ThreadPool pool(4);
  const std::size_t n = 1003;
  ASSERT_EQ(pool.chunk_count(n), 4u);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::size_t> firsts(pool.chunk_count(n), SIZE_MAX);
    std::vector<std::size_t> lasts(pool.chunk_count(n), 0);
    pool.parallel_for_chunks(
        n, [&](std::size_t chunk, std::size_t first, std::size_t last) {
          firsts[chunk] = first;
          lasts[chunk] = last;
        });
    // Chunk c always owns the same contiguous range, independent of thread
    // scheduling — the property solver reductions rely on for bit-identical
    // floating-point results.
    const std::size_t per = (n + 3) / 4;
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(firsts[c], c * per);
      EXPECT_EQ(lasts[c], std::min(c * per + per, n));
    }
  }
}

TEST(SmallFn, InlineStorageAndInvocation) {
  int hits = 0;
  SmallFn<void(), 64> fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
  using Fn = SmallFn<void(), 64>;
  struct Small {
    void* p[2];
    void operator()() {}
  };
  static_assert(Fn::stores_inline<Small>, "two pointers must fit inline");
}

TEST(SmallFn, HeapFallbackForLargeCaptures) {
  using Fn = SmallFn<void(), 16>;
  struct Big {
    double values[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    double sum = 0;
    void operator()() {
      for (double v : values) sum += v;
    }
  };
  static_assert(!Fn::stores_inline<Big>, "64-byte capture must spill");
  double got = 0;
  Fn fn([big = Big{}, &got]() mutable {
    big();
    got = big.sum;
  });
  fn();
  EXPECT_DOUBLE_EQ(got, 36.0);
}

TEST(SmallFn, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  SmallFn<void()> a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  SmallFn<void()> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(counter.use_count(), 2) << "move must not copy the capture";
  b();
  EXPECT_EQ(*counter, 1);
  SmallFn<void()> c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 2);
  c.reset();
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(SmallFn, MoveOnlyCaptureAndArguments) {
  auto owned = std::make_unique<int>(5);
  SmallFn<int(int), 48> fn(
      [p = std::move(owned)](int x) { return *p + x; });
  EXPECT_EQ(fn(10), 15);
}

TEST(Table, AlignsAndCounts) {
  Table t({"model", "energy_j"});
  t.add_row({"tree", Table::num(0.125)});
  t.add_row({"all-to-base", Table::num(1.5)});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.str();
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("all-to-base"), std::string::npos);
  EXPECT_NE(s.find("0.125"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, ShortRowIsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.str().find("only"), std::string::npos);
}

TEST(Result, ValueAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);

  auto bad = Result<int>::failure("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
  EXPECT_THROW(bad.value(), std::runtime_error);
}

}  // namespace
}  // namespace pgrid::common
