// Unit tests for service composition: task graphs, the HTN-lite planner,
// provider invocation across paradigms, and the composition manager's fault
// tolerance / graceful degradation / proactive-vs-reactive behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "agent/platform.hpp"
#include "compose/invoke.hpp"
#include "compose/manager.hpp"
#include "compose/planner.hpp"
#include "compose/provider.hpp"
#include "compose/task.hpp"
#include "discovery/broker.hpp"

namespace pgrid::compose {
namespace {

using discovery::InvocationParadigm;
using discovery::ServiceDescription;

// ---------------------------------------------------------------------------
// TaskGraph
// ---------------------------------------------------------------------------

TaskSpec spec(const std::string& name, const std::string& cls = "ComputeService") {
  TaskSpec s;
  s.name = name;
  s.service_class = cls;
  return s;
}

TEST(TaskGraph, TopoOrderRespectsEdges) {
  TaskGraph g;
  const auto a = g.add_task(spec("a"));
  const auto b = g.add_task(spec("b"));
  const auto c = g.add_task(spec("c"));
  g.add_edge(a, b);
  g.add_edge(b, c);
  auto order = g.topo_order();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value(), (std::vector<std::size_t>{a, b, c}));
}

TEST(TaskGraph, CycleDetected) {
  TaskGraph g;
  const auto a = g.add_task(spec("a"));
  const auto b = g.add_task(spec("b"));
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_FALSE(g.topo_order().ok());
}

TEST(TaskGraph, BadEdgeRejected) {
  TaskGraph g;
  g.add_task(spec("a"));
  g.add_edge(0, 7);
  EXPECT_FALSE(g.topo_order().ok());
}

TEST(TaskGraph, SourcesSinksPredsSuccs) {
  TaskGraph g;
  const auto a = g.add_task(spec("a"));
  const auto b = g.add_task(spec("b"));
  const auto c = g.add_task(spec("c"));
  const auto d = g.add_task(spec("d"));
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.add_edge(c, d);
  EXPECT_EQ(g.sources(), (std::vector<std::size_t>{a, b}));
  EXPECT_EQ(g.sinks(), std::vector<std::size_t>{d});
  EXPECT_EQ(g.predecessors(c), (std::vector<std::size_t>{a, b}));
  EXPECT_EQ(g.successors(c), std::vector<std::size_t>{d});
}

TEST(TaskGraph, Totals) {
  TaskGraph g;
  TaskSpec s1 = spec("a");
  s1.input_bytes = 100;
  s1.output_bytes = 50;
  s1.compute_ops = 1e6;
  TaskSpec s2 = spec("b");
  s2.input_bytes = 200;
  s2.output_bytes = 25;
  s2.compute_ops = 2e6;
  g.add_task(s1);
  g.add_task(s2);
  EXPECT_EQ(g.total_bytes(), 375u);
  EXPECT_DOUBLE_EQ(g.total_ops(), 3e6);
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

TEST(Planner, PrimitiveGoalYieldsSingleTask) {
  HtnPlanner p;
  p.add_primitive("solo", spec("solo"));
  auto plan = p.plan("solo");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().size(), 1u);
  EXPECT_TRUE(plan.value().edges().empty());
}

TEST(Planner, SequenceChainsEdges) {
  HtnPlanner p;
  p.add_primitive("x", spec("x"));
  p.add_primitive("y", spec("y"));
  p.add_method("both", {"x", "y"}, MethodMode::kSequence);
  auto plan = p.plan("both");
  ASSERT_TRUE(plan.ok());
  const auto& g = plan.value();
  EXPECT_EQ(g.size(), 2u);
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.task(g.edges()[0].first).name, "x");
  EXPECT_EQ(g.task(g.edges()[0].second).name, "y");
}

TEST(Planner, ParallelHasNoInternalEdges) {
  HtnPlanner p;
  p.add_primitive("x", spec("x"));
  p.add_primitive("y", spec("y"));
  p.add_method("fan", {"x", "y"}, MethodMode::kParallel);
  auto plan = p.plan("fan");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().size(), 2u);
  EXPECT_TRUE(plan.value().edges().empty());
}

TEST(Planner, NestedDecomposition) {
  // seq(fan(x, y), z): both x and y must precede z.
  HtnPlanner p;
  p.add_primitive("x", spec("x"));
  p.add_primitive("y", spec("y"));
  p.add_primitive("z", spec("z"));
  p.add_method("fan", {"x", "y"}, MethodMode::kParallel);
  p.add_method("all", {"fan", "z"}, MethodMode::kSequence);
  auto plan = p.plan("all");
  ASSERT_TRUE(plan.ok());
  const auto& g = plan.value();
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.edges().size(), 2u);
  // z is the unique sink with two predecessors.
  const auto sinks = g.sinks();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(g.task(sinks[0]).name, "z");
  EXPECT_EQ(g.predecessors(sinks[0]).size(), 2u);
}

TEST(Planner, UnknownGoalFails) {
  HtnPlanner p;
  EXPECT_FALSE(p.plan("mystery").ok());
  EXPECT_FALSE(p.knows("mystery"));
}

TEST(Planner, RecursiveMethodHitsDepthLimit) {
  HtnPlanner p;
  p.add_method("loop", {"loop"}, MethodMode::kSequence);
  EXPECT_FALSE(p.plan("loop").ok());
}

TEST(Planner, StreamMiningPlanShape) {
  // The paper's example: ensemble of decision trees -> Fourier spectra ->
  // dominant components -> single tree.
  auto planner = make_stream_mining_planner();
  auto plan = planner.plan("mine-data-stream");
  ASSERT_TRUE(plan.ok());
  const auto& g = plan.value();
  EXPECT_EQ(g.size(), 6u);  // 3 trees + spectrum + choose + combine
  // The three tree-builders run in parallel (all are sources).
  EXPECT_EQ(g.sources().size(), 3u);
  ASSERT_TRUE(g.topo_order().ok());
  const auto sinks = g.sinks();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(g.task(sinks[0]).name, "combine-into-single-tree");
}

// ---------------------------------------------------------------------------
// Provider + invoke
// ---------------------------------------------------------------------------

TEST(InvokeProtocol, EncodeDecodeRoundTrip) {
  const auto payload = encode_call(2.5e6, 1024, 4096);
  EXPECT_EQ(payload.size(), 4096u);
  double ops = 0;
  std::uint64_t out = 0;
  ASSERT_TRUE(decode_call(payload, ops, out));
  EXPECT_DOUBLE_EQ(ops, 2.5e6);
  EXPECT_EQ(out, 1024u);
}

TEST(InvokeProtocol, DecodeRejectsGarbage) {
  double ops;
  std::uint64_t out;
  EXPECT_FALSE(decode_call("", ops, out));
  EXPECT_FALSE(decode_call("hello world", ops, out));
}

class ComposeFixture : public ::testing::Test {
 protected:
  ComposeFixture()
      : net_(sim_, common::Rng(21)),
        platform_(net_),
        ontology_(discovery::make_standard_ontology()) {
    base_node_ = add_node(0);
    broker_id_ = platform_.register_agent(
        std::make_unique<discovery::BrokerAgent>("broker", base_node_,
                                                 ontology_));
    client_id_ = platform_.register_agent(std::make_unique<agent::LambdaAgent>(
        "client", base_node_,
        [](agent::LambdaAgent&, const agent::Envelope&) {}));
  }

  net::NodeId add_node(double x) {
    net::NodeConfig c;
    c.pos = {x, 0, 0};
    c.radio = net::LinkClass::wifi();
    c.unlimited_energy = true;
    return net_.add_node(c);
  }

  /// Creates a provider hosting `cls` on a fresh node and advertises it.
  ServiceProviderAgent* add_provider(
      const std::string& name, const std::string& cls, double x,
      double ops_per_second = 1e8,
      InvocationParadigm paradigm = InvocationParadigm::kAgentAcl) {
    const auto node = add_node(x);
    ServiceDescription service;
    service.name = name;
    service.service_class = cls;
    service.paradigm = paradigm;
    auto provider = std::make_unique<ServiceProviderAgent>(
        name, node, service, ops_per_second);
    auto* raw = provider.get();
    const auto id = platform_.register_agent(std::move(provider));
    raw->service().provider = id;
    discovery::advertise(platform_, id, broker_id_, raw->service());
    sim_.run();
    return raw;
  }

  sim::Simulator sim_;
  net::Network net_;
  agent::AgentPlatform platform_;
  discovery::Ontology ontology_;
  net::NodeId base_node_;
  agent::AgentId broker_id_;
  agent::AgentId client_id_;
};

TEST_F(ComposeFixture, InvokeReturnsResultAfterComputeDelay) {
  auto* provider = add_provider("solver", "PdeSolver", 50, 1e6);
  InvokeResult result;
  invoke_service(platform_, client_id_, provider->service(), 2e6, 256, 512,
                 sim::SimTime::seconds(60.0),
                 [&](InvokeResult r) { result = r; });
  sim_.run();
  EXPECT_TRUE(result.success);
  EXPECT_GT(result.result_bytes, 512u);  // output + framing
  EXPECT_GE(sim_.now().to_seconds(), 2.0) << "2e6 ops at 1e6 ops/s takes 2 s";
  EXPECT_EQ(provider->invocations(), 1u);
}

TEST_F(ComposeFixture, InvokeAllThreeParadigms) {
  auto* acl = add_provider("p-acl", "ComputeService", 30, 1e8,
                           InvocationParadigm::kAgentAcl);
  auto* rmi = add_provider("p-rmi", "ComputeService", 40, 1e8,
                           InvocationParadigm::kRemoteInvocation);
  auto* msg = add_provider("p-msg", "ComputeService", 50, 1e8,
                           InvocationParadigm::kMessagePassing);
  int successes = 0;
  for (auto* p : {acl, rmi, msg}) {
    invoke_service(platform_, client_id_, p->service(), 1e6, 128, 128,
                   sim::SimTime::seconds(30.0),
                   [&](InvokeResult r) { successes += r.success ? 1 : 0; });
  }
  sim_.run();
  EXPECT_EQ(successes, 3);
  // SOAP-style framing costs more wire bytes than bare message passing.
  EXPECT_GT(paradigm_overhead_bytes(InvocationParadigm::kRemoteInvocation),
            paradigm_overhead_bytes(InvocationParadigm::kMessagePassing));
}

TEST_F(ComposeFixture, InvokeDeadProviderTimesOut) {
  auto* provider = add_provider("ghost", "ComputeService", 50);
  provider->set_dead(true);
  InvokeResult result{true, 0, ""};
  invoke_service(platform_, client_id_, provider->service(), 1e6, 128, 128,
                 sim::SimTime::seconds(2.0),
                 [&](InvokeResult r) { result = r; });
  sim_.run();
  EXPECT_FALSE(result.success);
}

TEST_F(ComposeFixture, InjectedFaultReportsFailure) {
  auto* provider = add_provider("flaky", "ComputeService", 50);
  provider->set_failure_probability(1.0, common::Rng(1));
  InvokeResult result{true, 0, ""};
  invoke_service(platform_, client_id_, provider->service(), 1e6, 128, 128,
                 sim::SimTime::seconds(30.0),
                 [&](InvokeResult r) { result = r; });
  sim_.run();
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.error, "service fault");
  EXPECT_EQ(provider->failures_injected(), 1u);
}

// ---------------------------------------------------------------------------
// CompositionManager
// ---------------------------------------------------------------------------

TEST_F(ComposeFixture, ExecuteLinearPipeline) {
  add_provider("miner", "DecisionTreeMiner", 30);
  add_provider("fourier", "FourierSpectrumService", 40);
  add_provider("generic", "DataMiningService", 50);

  auto planner = make_stream_mining_planner();
  auto plan = planner.plan("mine-data-stream");
  ASSERT_TRUE(plan.ok());

  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(plan.value(), CompositionOptions{},
                  [&](CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.tasks_completed, 6u);
  EXPECT_EQ(report.tasks_skipped, 0u);
  EXPECT_DOUBLE_EQ(report.service_level(), 1.0);
  EXPECT_GT(report.elapsed_s, 0.0);
}

TEST_F(ComposeFixture, EmptyGraphSucceedsTrivially) {
  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(TaskGraph{}, CompositionOptions{},
                  [&](CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.tasks_total, 0u);
}

TEST_F(ComposeFixture, MissingServiceFailsComposite) {
  TaskGraph g;
  g.add_task(spec("impossible", "NavierStokesSolver"));
  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(g, CompositionOptions{},
                  [&](CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.failure_reason.find("impossible"), std::string::npos);
}

TEST_F(ComposeFixture, FaultTriggersRebindToAlternate) {
  auto* bad = add_provider("bad-solver", "PdeSolver", 30);
  bad->set_failure_probability(1.0, common::Rng(2));
  add_provider("good-solver", "PdeSolver", 40);

  TaskGraph g;
  g.add_task(spec("solve", "PdeSolver"));
  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(g, CompositionOptions{},
                  [&](CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_TRUE(report.success);
  EXPECT_GE(report.rebinds, 1u);
  EXPECT_EQ(report.tasks_completed, 1u);
}

TEST_F(ComposeFixture, RebindBudgetExhaustedFails) {
  auto* bad1 = add_provider("bad1", "PdeSolver", 30);
  auto* bad2 = add_provider("bad2", "PdeSolver", 40);
  bad1->set_failure_probability(1.0, common::Rng(3));
  bad2->set_failure_probability(1.0, common::Rng(4));

  TaskGraph g;
  g.add_task(spec("solve", "PdeSolver"));
  CompositionOptions options;
  options.max_rebinds_per_task = 1;
  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(g, options, [&](CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_FALSE(report.success);
}

TEST_F(ComposeFixture, OptionalTaskDegradesGracefully) {
  add_provider("miner", "DecisionTreeMiner", 30);
  // No FourierSpectrumService exists — but that step is optional.
  TaskGraph g;
  const auto t1 = g.add_task(spec("mine", "DecisionTreeMiner"));
  TaskSpec enrich = spec("enrich", "FourierSpectrumService");
  enrich.optional = true;
  const auto t2 = g.add_task(enrich);
  g.add_edge(t1, t2);

  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(g, CompositionOptions{},
                  [&](CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.tasks_completed, 1u);
  EXPECT_EQ(report.tasks_skipped, 1u);
  EXPECT_DOUBLE_EQ(report.service_level(), 0.5);
}

TEST_F(ComposeFixture, DegradationDisabledFailsInstead) {
  TaskGraph g;
  TaskSpec only = spec("enrich", "FourierSpectrumService");
  only.optional = true;
  g.add_task(only);
  CompositionOptions options;
  options.allow_degraded = false;
  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(g, options, [&](CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_FALSE(report.success);
}

TEST_F(ComposeFixture, ProactiveModeSkipsDiscoveryRoundTrips) {
  add_provider("miner", "DecisionTreeMiner", 30);
  add_provider("fourier", "FourierSpectrumService", 40);
  add_provider("generic", "DataMiningService", 50);
  auto plan = make_stream_mining_planner().plan("mine-data-stream");
  ASSERT_TRUE(plan.ok());

  CompositionManager manager(platform_, client_id_, broker_id_);
  std::size_t resolved = 0;
  manager.precompute(plan.value(), [&](std::size_t n) { resolved = n; });
  sim_.run();
  EXPECT_GT(resolved, 0u);
  EXPECT_GT(manager.cached_bindings(), 0u);

  CompositionOptions options;
  options.mode = CompositionMode::kProactive;
  CompositionReport report;
  manager.execute(plan.value(), options,
                  [&](CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.discoveries, 0u) << "all bindings came from the cache";
}

TEST_F(ComposeFixture, ProactiveStaleBindingFallsBackToDiscovery) {
  auto* old_provider = add_provider("old", "PdeSolver", 30);
  TaskGraph g;
  g.add_task(spec("solve", "PdeSolver"));

  CompositionManager manager(platform_, client_id_, broker_id_);
  manager.precompute(g, [](std::size_t) {});
  sim_.run();

  // The cached provider dies; a replacement appears.
  old_provider->set_dead(true);
  discovery::unadvertise(platform_, client_id_, broker_id_, "old");
  add_provider("fresh", "PdeSolver", 40);

  CompositionOptions options;
  options.mode = CompositionMode::kProactive;
  options.invoke_timeout = sim::SimTime::seconds(2.0);
  CompositionReport report;
  manager.execute(g, options, [&](CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_TRUE(report.success);
  EXPECT_GE(report.rebinds, 1u);
  EXPECT_GE(report.discoveries, 1u);
}

TEST_F(ComposeFixture, ReactiveFindsShortLivedService) {
  // A service with a short lease is available now; reactive composition
  // binds it before it expires.
  const auto node = add_node(30);
  ServiceDescription service;
  service.name = "transient-sensor";
  service.service_class = "ToxinSensor";
  service.lease_expiry = sim_.now() + sim::SimTime::seconds(30.0);
  auto provider = std::make_unique<ServiceProviderAgent>("transient", node,
                                                         service, 1e8);
  auto* raw = provider.get();
  const auto id = platform_.register_agent(std::move(provider));
  raw->service().provider = id;
  discovery::advertise(platform_, id, broker_id_, raw->service());
  sim_.run();

  TaskGraph g;
  g.add_task(spec("read-toxins", "ToxinSensor"));
  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(g, CompositionOptions{},
                  [&](CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_TRUE(report.success);
}

}  // namespace
}  // namespace pgrid::compose
