// Tests for contract-net negotiation: CFP/bid/award conversations,
// performance-commitment selection, declines, timeouts and custom award
// policies.
#include <gtest/gtest.h>

#include <memory>

#include "agent/contract_net.hpp"
#include "agent/platform.hpp"

namespace pgrid::agent {
namespace {

class ContractNetFixture : public ::testing::Test {
 protected:
  ContractNetFixture() : net_(sim_, common::Rng(5)), platform_(net_) {
    hub_ = add_node(0);
    initiator_ = platform_.register_agent(std::make_unique<LambdaAgent>(
        "initiator", hub_, [](LambdaAgent&, const Envelope&) {}));
  }

  net::NodeId add_node(double x) {
    net::NodeConfig c;
    c.pos = {x, 0, 0};
    c.radio = net::LinkClass::wifi();
    c.unlimited_energy = true;
    return net_.add_node(c);
  }

  BidderAgent* add_bidder(const std::string& name, double x, double cost,
                          double latency, AgentId* id_out = nullptr) {
    auto bidder = std::make_unique<BidderAgent>(
        name, add_node(x), [cost, latency](const std::string&) {
          Proposal proposal;
          proposal.cost = cost;
          proposal.latency_s = latency;
          return std::optional<Proposal>(proposal);
        });
    auto* raw = bidder.get();
    const auto id = platform_.register_agent(std::move(bidder));
    if (id_out) *id_out = id;
    return raw;
  }

  sim::Simulator sim_;
  net::Network net_;
  AgentPlatform platform_;
  net::NodeId hub_;
  AgentId initiator_;
};

TEST(ProposalWire, RoundTrip) {
  Proposal p;
  p.bidder = 42;
  p.cost = 3.25;
  p.latency_s = 0.125;
  p.note = "will transcode via deputy";
  auto parsed = parse_proposal(serialize(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->bidder, 42u);
  EXPECT_DOUBLE_EQ(parsed->cost, 3.25);
  EXPECT_DOUBLE_EQ(parsed->latency_s, 0.125);
  EXPECT_EQ(parsed->note, "will transcode via deputy");
}

TEST(ProposalWire, RejectsGarbage) {
  EXPECT_FALSE(parse_proposal("").has_value());
  EXPECT_FALSE(parse_proposal("note=no cost here").has_value());
  EXPECT_FALSE(parse_proposal("cost=abc").has_value());
}

TEST_F(ContractNetFixture, CheapestBidWinsByDefault) {
  AgentId cheap_id = kInvalidAgent;
  auto* cheap = add_bidder("cheap", 10, 1.0, 9.0, &cheap_id);
  auto* pricey = add_bidder("pricey", 20, 5.0, 1.0);
  NegotiationResult result;
  negotiate(platform_, initiator_, {cheap_id, pricey->id()},
            "solve-heat-equation", sim::SimTime::seconds(10.0),
            [&](NegotiationResult r) { result = std::move(r); });
  sim_.run();
  ASSERT_EQ(result.proposals.size(), 2u);
  ASSERT_TRUE(result.awarded.has_value());
  EXPECT_EQ(result.awarded->bidder, cheap_id);
  EXPECT_EQ(cheap->awards_won(), 1u);
  EXPECT_EQ(pricey->rejections(), 1u);
  EXPECT_EQ(cheap->cfps_seen(), 1u);
  EXPECT_EQ(pricey->cfps_seen(), 1u);
}

TEST_F(ContractNetFixture, LatencyPolicyFlipsTheAward) {
  AgentId cheap_id = kInvalidAgent;
  AgentId fast_id = kInvalidAgent;
  add_bidder("cheap-slow", 10, 1.0, 9.0, &cheap_id);
  add_bidder("pricey-fast", 20, 5.0, 1.0, &fast_id);
  NegotiationResult result;
  negotiate(
      platform_, initiator_, {cheap_id, fast_id}, "urgent-task",
      sim::SimTime::seconds(10.0),
      [&](NegotiationResult r) { result = std::move(r); },
      [](const Proposal& p) { return p.latency_s; });
  sim_.run();
  ASSERT_TRUE(result.awarded.has_value());
  EXPECT_EQ(result.awarded->bidder, fast_id);
}

TEST_F(ContractNetFixture, DeclinersAreExcluded) {
  AgentId bid_id = kInvalidAgent;
  add_bidder("bidder", 10, 2.0, 2.0, &bid_id);
  auto decliner = std::make_unique<BidderAgent>(
      "decliner", add_node(30),
      [](const std::string&) { return std::optional<Proposal>(); });
  auto* decliner_raw = decliner.get();
  const auto decliner_id = platform_.register_agent(std::move(decliner));

  NegotiationResult result;
  negotiate(platform_, initiator_, {bid_id, decliner_id}, "task",
            sim::SimTime::seconds(10.0),
            [&](NegotiationResult r) { result = std::move(r); });
  sim_.run();
  EXPECT_EQ(result.proposals.size(), 1u);
  ASSERT_TRUE(result.awarded.has_value());
  EXPECT_EQ(result.awarded->bidder, bid_id);
  EXPECT_EQ(decliner_raw->cfps_seen(), 1u);
  EXPECT_EQ(decliner_raw->awards_won(), 0u);
}

TEST_F(ContractNetFixture, UnreachableBidderJustMissesTheRound) {
  AgentId good_id = kInvalidAgent;
  add_bidder("good", 10, 2.0, 2.0, &good_id);
  AgentId far_id = kInvalidAgent;
  add_bidder("far", 99999, 0.5, 0.5, &far_id);  // cheapest but unreachable
  NegotiationResult result;
  negotiate(platform_, initiator_, {good_id, far_id}, "task",
            sim::SimTime::seconds(5.0),
            [&](NegotiationResult r) { result = std::move(r); });
  sim_.run();
  ASSERT_TRUE(result.awarded.has_value());
  EXPECT_EQ(result.awarded->bidder, good_id);
}

TEST_F(ContractNetFixture, NoParticipantsYieldsNoAward) {
  bool called = false;
  NegotiationResult result;
  negotiate(platform_, initiator_, {}, "task", sim::SimTime::seconds(5.0),
            [&](NegotiationResult r) {
              called = true;
              result = std::move(r);
            });
  sim_.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(result.awarded.has_value());
  EXPECT_TRUE(result.proposals.empty());
}

TEST_F(ContractNetFixture, AllDeclineYieldsNoAward) {
  auto decline = [](const std::string&) { return std::optional<Proposal>(); };
  const auto a = platform_.register_agent(
      std::make_unique<BidderAgent>("a", add_node(10), decline));
  const auto b = platform_.register_agent(
      std::make_unique<BidderAgent>("b", add_node(20), decline));
  NegotiationResult result;
  result.awarded = Proposal{};
  negotiate(platform_, initiator_, {a, b}, "task", sim::SimTime::seconds(5.0),
            [&](NegotiationResult r) { result = std::move(r); });
  sim_.run();
  EXPECT_FALSE(result.awarded.has_value());
}

TEST_F(ContractNetFixture, BidderSeesTaskDescription) {
  // A bidder that only bids on tasks it understands.
  std::string seen;
  auto picky = std::make_unique<BidderAgent>(
      "picky", add_node(10), [&seen](const std::string& task) {
        seen = task;
        if (task != "pde-solve") return std::optional<Proposal>();
        Proposal p;
        p.cost = 1.0;
        return std::optional<Proposal>(p);
      });
  const auto picky_id = platform_.register_agent(std::move(picky));

  NegotiationResult wrong_task;
  negotiate(platform_, initiator_, {picky_id}, "make-coffee",
            sim::SimTime::seconds(5.0),
            [&](NegotiationResult r) { wrong_task = std::move(r); });
  sim_.run();
  EXPECT_EQ(seen, "make-coffee");
  EXPECT_FALSE(wrong_task.awarded.has_value());

  NegotiationResult right_task;
  negotiate(platform_, initiator_, {picky_id}, "pde-solve",
            sim::SimTime::seconds(5.0),
            [&](NegotiationResult r) { right_task = std::move(r); });
  sim_.run();
  EXPECT_TRUE(right_task.awarded.has_value());
}

}  // namespace
}  // namespace pgrid::agent
