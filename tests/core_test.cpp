// Integration tests: the full PervasiveGridRuntime pipeline — handheld
// submission over agents, classification, decision making, execution across
// sensors/base/grid, adaptive feedback, and the discovery plane wired into
// the same deployment.
#include <gtest/gtest.h>

#include <memory>

#include "core/runtime.hpp"

namespace pgrid::core {
namespace {

RuntimeConfig small_config() {
  RuntimeConfig config;
  config.sensors.sensor_count = 49;
  config.sensors.width_m = 120.0;
  config.sensors.height_m = 120.0;
  config.sensors.base_pos = {-5, -5, 0};
  config.sensors.noise_std = 0.0;
  config.pde_resolution = 13;
  config.continuous_epochs = 3;
  return config;
}

class RuntimeFixture : public ::testing::Test {
 protected:
  RuntimeFixture() : runtime_(small_config()) {
    sensornet::FireSource fire;
    fire.pos = {60, 60, 0};
    fire.start = sim::SimTime::seconds(-3600.0);
    fire.spread_m_per_s = 0.0;
    runtime_.field().ignite(fire);
  }

  PervasiveGridRuntime runtime_;
};

TEST_F(RuntimeFixture, ConstructionWiresEverything) {
  EXPECT_EQ(runtime_.sensors().sensors().size(), 49u);
  ASSERT_NE(runtime_.grid(), nullptr);
  EXPECT_EQ(runtime_.grid()->machine_count(), 2u);
  EXPECT_NE(runtime_.handheld_node(), net::kInvalidNode);
  // Services were advertised: 49 sensors + aggregator + heat solver.
  EXPECT_GE(runtime_.broker().registry().size(), 51u);
  // Batteries are full after the registration burst.
  EXPECT_DOUBLE_EQ(runtime_.network().battery_energy_consumed(), 0.0);
}

TEST_F(RuntimeFixture, SimpleQueryEndToEnd) {
  auto outcome =
      runtime_.submit_and_run("SELECT temp FROM sensors WHERE sensor = 24");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.classification.primary, query::QueryClass::kSimple);
  EXPECT_EQ(outcome.model, partition::SolutionModel::kAllToBase);
  EXPECT_GT(outcome.actual.value, 15.0);
  EXPECT_GT(outcome.handheld_response_s, outcome.actual.response_s)
      << "handheld latency includes the edge hop";
}

TEST_F(RuntimeFixture, AggregateQueryPicksInNetworkModel) {
  auto outcome = runtime_.submit_and_run("SELECT AVG(temp) FROM sensors");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.classification.primary, query::QueryClass::kAggregate);
  // Energy objective (default): in-network aggregation must win.
  EXPECT_TRUE(outcome.model == partition::SolutionModel::kTreeAggregate ||
              outcome.model == partition::SolutionModel::kClusterAggregate)
      << to_string(outcome.model);
  EXPECT_NEAR(outcome.actual.value, 32.2, 3.0);  // 48 cool + 1 hot sensor
}

TEST_F(RuntimeFixture, MaxQueryFindsTheFireTemperature) {
  auto outcome = runtime_.submit_and_run("SELECT MAX(temp) FROM sensors");
  ASSERT_TRUE(outcome.ok);
  EXPECT_NEAR(outcome.actual.value, 620.0, 10.0);
}

TEST_F(RuntimeFixture, ComplexQueryProducesDistribution) {
  // Force full-fidelity offload: the default energy objective would choose
  // the hybrid model, whose region averaging legitimately smooths the fire.
  auto outcome = runtime_.submit_and_run(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors",
      partition::SolutionModel::kGridOffload);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.classification.primary, query::QueryClass::kComplex);
  ASSERT_TRUE(outcome.actual.distribution.has_value());
  const auto& dist = *outcome.actual.distribution;
  EXPECT_GT(dist.value_at({60, 60, 0}), dist.value_at({0, 119, 0}) + 50.0);
}

TEST_F(RuntimeFixture, CostTimePicksFastModelForComplex) {
  auto time_outcome = runtime_.submit_and_run(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors COST time 5");
  ASSERT_TRUE(time_outcome.ok) << time_outcome.error;
  // Under a response-time objective the handheld (slowest CPU) never wins.
  EXPECT_NE(time_outcome.model, partition::SolutionModel::kHandheldLocal);
}

TEST_F(RuntimeFixture, CostEnergyPicksHybridForComplex) {
  auto outcome = runtime_.submit_and_run(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors COST energy 1");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.model, partition::SolutionModel::kHybridRegionGrid);
  EXPECT_LT(outcome.actual.accuracy, 1.0);
}

TEST_F(RuntimeFixture, ForcedModelIsRespected) {
  auto outcome = runtime_.submit_and_run(
      "SELECT AVG(temp) FROM sensors",
      partition::SolutionModel::kGridOffload);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.model, partition::SolutionModel::kGridOffload);
}

TEST_F(RuntimeFixture, ContinuousQueryReportsEpochs) {
  auto outcome = runtime_.submit_and_run(
      "SELECT AVG(temp) FROM sensors EPOCH DURATION 10");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.classification.primary, query::QueryClass::kContinuous);
  EXPECT_EQ(outcome.epochs.size(), 3u);
  EXPECT_GT(outcome.actual.energy_j, outcome.epochs[0].energy_j)
      << "total energy sums the epochs";
}

TEST_F(RuntimeFixture, ParseErrorSurfacesCleanly) {
  auto outcome = runtime_.submit_and_run("SELEKT nonsense");
  EXPECT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.error.empty());
}

TEST_F(RuntimeFixture, AdaptiveFeedbackAccumulates) {
  EXPECT_EQ(runtime_.decision_maker().observations(
                query::QueryClass::kAggregate,
                partition::SolutionModel::kTreeAggregate),
            0u);
  runtime_.submit_and_run("SELECT AVG(temp) FROM sensors",
                          partition::SolutionModel::kTreeAggregate);
  runtime_.submit_and_run("SELECT AVG(temp) FROM sensors",
                          partition::SolutionModel::kTreeAggregate);
  EXPECT_EQ(runtime_.decision_maker().observations(
                query::QueryClass::kAggregate,
                partition::SolutionModel::kTreeAggregate),
            2u);
  // Calibration converges toward actual/estimate and stays positive.
  EXPECT_GT(runtime_.decision_maker().energy_calibration(
                query::QueryClass::kAggregate,
                partition::SolutionModel::kTreeAggregate),
            0.0);
}

TEST_F(RuntimeFixture, EstimateAccompaniesEveryOutcome) {
  auto outcome = runtime_.submit_and_run("SELECT AVG(temp) FROM sensors");
  ASSERT_TRUE(outcome.ok);
  EXPECT_GT(outcome.estimate.energy_j, 0.0);
  EXPECT_TRUE(std::isfinite(outcome.estimate.energy_j));
  EXPECT_GT(outcome.estimate.response_s, 0.0);
}

TEST_F(RuntimeFixture, DiscoveryPlaneFindsSensorServices) {
  // The same deployment serves semantic discovery: find temperature sensors
  // near the fire.
  discovery::ServiceRequest request;
  request.desired_class = "TemperatureSensor";
  request.constraints.push_back(
      {"x", discovery::ConstraintOp::kGe, 40.0, true});
  request.constraints.push_back(
      {"y", discovery::ConstraintOp::kGe, 40.0, true});
  request.max_results = 50;
  std::vector<discovery::Match> found;
  discovery::discover(
      runtime_.agents(), runtime_.agents().find_by_name("handheld")->id(),
      runtime_.agents().find_by_name("broker")->id(), request,
      sim::SimTime::seconds(30.0),
      [&](std::vector<discovery::Match> matches) { found = std::move(matches); });
  runtime_.simulator().run();
  EXPECT_FALSE(found.empty());
  for (const auto& match : found) {
    EXPECT_GE(std::get<double>(match.service.properties.at("x")), 40.0);
  }
}

TEST_F(RuntimeFixture, NoGridConfigDegradesToEdgeModels) {
  RuntimeConfig config = small_config();
  config.grid_machines.clear();
  PervasiveGridRuntime edge_only(config);
  EXPECT_EQ(edge_only.grid(), nullptr);
  auto outcome = edge_only.submit_and_run(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.model == partition::SolutionModel::kAllToBase ||
              outcome.model == partition::SolutionModel::kHandheldLocal);
}

TEST_F(RuntimeFixture, DeterministicAcrossRuns) {
  PervasiveGridRuntime twin(small_config());
  sensornet::FireSource fire;
  fire.pos = {60, 60, 0};
  fire.start = sim::SimTime::seconds(-3600.0);
  fire.spread_m_per_s = 0.0;
  twin.field().ignite(fire);
  const auto a = runtime_.submit_and_run("SELECT AVG(temp) FROM sensors");
  const auto b = twin.submit_and_run("SELECT AVG(temp) FROM sensors");
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_DOUBLE_EQ(a.actual.value, b.actual.value);
  EXPECT_DOUBLE_EQ(a.actual.energy_j, b.actual.energy_j);
  EXPECT_DOUBLE_EQ(a.handheld_response_s, b.handheld_response_s);
}

}  // namespace
}  // namespace pgrid::core
