// Unit tests for semantic service discovery: ontology reasoning, wire
// format, the three matchers (including the paper's printer example), the
// registry, and broker agents (centralized + federated).
#include <gtest/gtest.h>

#include <memory>

#include "agent/platform.hpp"
#include "discovery/broker.hpp"
#include "discovery/matcher.hpp"
#include "discovery/ontology.hpp"
#include "discovery/registry.hpp"
#include "discovery/service.hpp"

namespace pgrid::discovery {
namespace {

// ---------------------------------------------------------------------------
// Ontology
// ---------------------------------------------------------------------------

TEST(Ontology, AddAndFind) {
  Ontology o;
  const auto root = o.add_class("Service");
  const auto sensor = o.add_class("SensorService", {"Service"});
  EXPECT_EQ(o.size(), 2u);
  EXPECT_EQ(o.find("Service"), root);
  EXPECT_EQ(o.find("SensorService"), sensor);
  EXPECT_FALSE(o.find("Nope").has_value());
  EXPECT_EQ(o.name(sensor), "SensorService");
}

TEST(Ontology, ReAddReturnsExistingId) {
  Ontology o;
  const auto a = o.add_class("Service");
  const auto b = o.add_class("Service");
  EXPECT_EQ(a, b);
  EXPECT_EQ(o.size(), 1u);
}

TEST(Ontology, UnknownParentThrows) {
  Ontology o;
  EXPECT_THROW(o.add_class("X", {"Missing"}), std::invalid_argument);
}

TEST(Ontology, IsAReflexiveTransitive) {
  auto o = make_standard_ontology();
  EXPECT_TRUE(o.is_a("TemperatureSensor", "TemperatureSensor"));
  EXPECT_TRUE(o.is_a("TemperatureSensor", "SensorService"));
  EXPECT_TRUE(o.is_a("TemperatureSensor", "Service"));
  EXPECT_FALSE(o.is_a("SensorService", "TemperatureSensor"));
  EXPECT_FALSE(o.is_a("TemperatureSensor", "ComputeService"));
}

TEST(Ontology, MultipleInheritance) {
  auto o = make_standard_ontology();
  EXPECT_TRUE(o.is_a("ColorLaserPrinter", "ColorPrinter"));
  EXPECT_TRUE(o.is_a("ColorLaserPrinter", "LaserPrinter"));
  EXPECT_TRUE(o.is_a("ColorLaserPrinter", "PrinterService"));
}

TEST(Ontology, DepthFromRoot) {
  auto o = make_standard_ontology();
  EXPECT_EQ(o.depth(*o.find("Service")), 0u);
  EXPECT_EQ(o.depth(*o.find("SensorService")), 1u);
  EXPECT_EQ(o.depth(*o.find("TemperatureSensor")), 2u);
  EXPECT_EQ(o.depth(*o.find("HeatEquationSolver")), 3u);
}

TEST(Ontology, SimilarityIdentityAndSiblings) {
  auto o = make_standard_ontology();
  EXPECT_DOUBLE_EQ(o.similarity("TemperatureSensor", "TemperatureSensor"), 1.0);
  // Siblings under SensorService (depth 1): 2*1/(2+2) = 0.5.
  EXPECT_DOUBLE_EQ(o.similarity("TemperatureSensor", "SmokeSensor"), 0.5);
  // Cross-branch: LCS is the root at depth 0 -> similarity 0.
  EXPECT_DOUBLE_EQ(o.similarity("TemperatureSensor", "PdeSolver"), 0.0);
}

TEST(Ontology, SimilaritySymmetricAndBounded) {
  auto o = make_standard_ontology();
  const char* names[] = {"Service", "SensorService", "TemperatureSensor",
                         "PdeSolver", "ColorLaserPrinter", "DataMiningService"};
  for (const char* a : names) {
    for (const char* b : names) {
      const double s1 = o.similarity(a, b);
      const double s2 = o.similarity(b, a);
      EXPECT_DOUBLE_EQ(s1, s2);
      EXPECT_GE(s1, 0.0);
      EXPECT_LE(s1, 1.0);
    }
  }
}

TEST(Ontology, SimilarityUnknownClassIsZero) {
  auto o = make_standard_ontology();
  EXPECT_DOUBLE_EQ(o.similarity("TemperatureSensor", "Bogus"), 0.0);
}

TEST(Ontology, AncestorsIncludeSelfAndAllParents) {
  auto o = make_standard_ontology();
  const auto id = *o.find("ColorLaserPrinter");
  auto ancestors = o.ancestors(id);
  auto has = [&](const char* name) {
    return std::find(ancestors.begin(), ancestors.end(), *o.find(name)) !=
           ancestors.end();
  };
  EXPECT_TRUE(has("ColorLaserPrinter"));
  EXPECT_TRUE(has("ColorPrinter"));
  EXPECT_TRUE(has("LaserPrinter"));
  EXPECT_TRUE(has("PrinterService"));
  EXPECT_TRUE(has("Service"));
  EXPECT_FALSE(has("SensorService"));
}

// ---------------------------------------------------------------------------
// Service descriptions, constraints, serialization
// ---------------------------------------------------------------------------

ServiceDescription make_printer(const std::string& name, double queue,
                                double distance, bool color, double cost) {
  ServiceDescription s;
  s.name = name;
  s.service_class = color ? "ColorPrinter" : "LaserPrinter";
  s.properties["queue_length"] = queue;
  s.properties["distance_m"] = distance;
  s.properties["color"] = color;
  s.properties["cost_per_page"] = cost;
  s.interfaces = {"printIt()"};
  s.cost = cost;
  return s;
}

TEST(Service, SatisfiesNumericOps) {
  auto s = make_printer("p", 3.0, 10.0, true, 0.25);
  EXPECT_TRUE(satisfies(s, {"queue_length", ConstraintOp::kLe, 3.0}));
  EXPECT_TRUE(satisfies(s, {"queue_length", ConstraintOp::kLt, 4.0}));
  EXPECT_FALSE(satisfies(s, {"queue_length", ConstraintOp::kLt, 3.0}));
  EXPECT_TRUE(satisfies(s, {"queue_length", ConstraintOp::kGe, 3.0}));
  EXPECT_TRUE(satisfies(s, {"queue_length", ConstraintOp::kNe, 5.0}));
  EXPECT_TRUE(satisfies(s, {"color", ConstraintOp::kEq, true}));
}

TEST(Service, SatisfiesMissingOrMistypedPropertyFails) {
  auto s = make_printer("p", 3.0, 10.0, true, 0.25);
  EXPECT_FALSE(satisfies(s, {"nonexistent", ConstraintOp::kEq, 1.0}));
  EXPECT_FALSE(satisfies(s, {"queue_length", ConstraintOp::kEq,
                             std::string("three")}));
}

TEST(Service, SerializeRoundTrip) {
  ServiceDescription s = make_printer("lab-printer", 2.0, 15.5, true, 0.10);
  s.requirements["power_w"] = 300.0;
  s.uuid = Uuid{0xdeadbeefULL, 0xcafebabeULL};
  s.paradigm = InvocationParadigm::kRemoteInvocation;
  s.provider = 42;
  s.node = 7;
  s.lease_expiry = sim::SimTime::seconds(30.0);

  auto parsed = parse_service(serialize(s));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, "lab-printer");
  EXPECT_EQ(parsed->service_class, "ColorPrinter");
  EXPECT_DOUBLE_EQ(std::get<double>(parsed->properties.at("queue_length")), 2.0);
  EXPECT_EQ(std::get<bool>(parsed->properties.at("color")), true);
  EXPECT_DOUBLE_EQ(std::get<double>(parsed->requirements.at("power_w")), 300.0);
  EXPECT_EQ(parsed->interfaces, std::vector<std::string>{"printIt()"});
  EXPECT_EQ(parsed->uuid, s.uuid);
  EXPECT_EQ(parsed->paradigm, InvocationParadigm::kRemoteInvocation);
  EXPECT_EQ(parsed->provider, 42u);
  EXPECT_EQ(parsed->node, 7u);
  EXPECT_EQ(parsed->lease_expiry, sim::SimTime::seconds(30.0));
}

TEST(Service, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_service("").has_value());
  EXPECT_FALSE(parse_service("class=Foo\n").has_value());  // missing name
  EXPECT_FALSE(parse_service("name=x\nprop.bad=z:1\n").has_value());
}

TEST(Service, RequestSerializeRoundTrip) {
  ServiceRequest r;
  r.desired_class = "ColorPrinter";
  r.constraints.push_back({"cost_per_page", ConstraintOp::kLe, 0.2, true});
  r.constraints.push_back({"color", ConstraintOp::kEq, true, false});
  r.preferences.push_back({"queue_length", true, 2.0});
  r.required_interfaces.push_back("printIt()");
  r.uuid = Uuid{1, 2};
  r.max_results = 3;

  auto parsed = parse_request(serialize(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->desired_class, "ColorPrinter");
  ASSERT_EQ(parsed->constraints.size(), 2u);
  EXPECT_EQ(parsed->constraints[0].op, ConstraintOp::kLe);
  EXPECT_TRUE(parsed->constraints[0].hard);
  EXPECT_FALSE(parsed->constraints[1].hard);
  ASSERT_EQ(parsed->preferences.size(), 1u);
  EXPECT_TRUE(parsed->preferences[0].minimize);
  EXPECT_DOUBLE_EQ(parsed->preferences[0].weight, 2.0);
  EXPECT_EQ(parsed->required_interfaces.size(), 1u);
  ASSERT_TRUE(parsed->uuid.has_value());
  EXPECT_EQ(parsed->uuid->lo, 2u);
  EXPECT_EQ(parsed->max_results, 3u);
}

TEST(Service, MatchListRoundTrip) {
  std::vector<Match> matches;
  matches.push_back({make_printer("a", 1, 2, true, 0.1), 0.9});
  matches.push_back({make_printer("b", 5, 8, false, 0.2), 0.4});
  auto parsed = parse_matches(serialize_matches(matches));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].service.name, "a");
  EXPECT_DOUBLE_EQ(parsed[0].score, 0.9);
  EXPECT_EQ(parsed[1].service.name, "b");
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, RegisterReplaceUnregister) {
  ServiceRegistry reg;
  EXPECT_FALSE(reg.register_service(make_printer("p1", 1, 1, true, 0.1)));
  EXPECT_TRUE(reg.register_service(make_printer("p1", 9, 1, true, 0.1)));
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_DOUBLE_EQ(
      std::get<double>(reg.find("p1")->properties.at("queue_length")), 9.0);
  EXPECT_TRUE(reg.unregister_service("p1"));
  EXPECT_FALSE(reg.unregister_service("p1"));
  EXPECT_TRUE(reg.empty());
}

TEST(Registry, SweepDropsExpiredLeases) {
  ServiceRegistry reg;
  auto s1 = make_printer("expiring", 1, 1, true, 0.1);
  s1.lease_expiry = sim::SimTime::seconds(10.0);
  auto s2 = make_printer("permanent", 1, 1, true, 0.1);
  reg.register_service(s1);
  reg.register_service(s2);
  EXPECT_EQ(reg.sweep(sim::SimTime::seconds(5.0)), 0u);
  EXPECT_EQ(reg.sweep(sim::SimTime::seconds(10.0)), 1u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.find("permanent").has_value());
}

// ---------------------------------------------------------------------------
// Matchers
// ---------------------------------------------------------------------------

class MatcherFixture : public ::testing::Test {
 protected:
  MatcherFixture() : ontology_(make_standard_ontology()) {
    // The paper's printer fleet: the client wants a color printer with the
    // shortest queue, nearby, under a cost cap.
    services_.push_back(make_printer("cheap-color", 6, 40, true, 0.05));
    services_.push_back(make_printer("idle-color", 0, 25, true, 0.15));
    services_.push_back(make_printer("pricey-color", 1, 5, true, 0.80));
    services_.push_back(make_printer("mono-laser", 0, 1, false, 0.02));
    auto combo = make_printer("combo", 2, 30, true, 0.12);
    combo.service_class = "ColorLaserPrinter";
    services_.push_back(combo);
    services_[3].uuid = Uuid{11, 22};
  }

  Ontology ontology_;
  std::vector<ServiceDescription> services_;
};

TEST_F(MatcherFixture, SemanticSubsumptionMatchesSubclasses) {
  SemanticMatcher matcher(ontology_);
  ServiceRequest request;
  request.desired_class = "ColorPrinter";
  auto matches = matcher.match(services_, request);
  // All ColorPrinter + ColorLaserPrinter; mono LaserPrinter is a sibling at
  // similarity 2*1/(2+2)=0.5 >= threshold, so it appears but ranks below.
  ASSERT_GE(matches.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NE(matches[i].service.service_class, "LaserPrinter")
        << "exact color printers must outrank the sibling class";
  }
}

TEST_F(MatcherFixture, SemanticHardConstraintGates) {
  SemanticMatcher matcher(ontology_);
  ServiceRequest request;
  request.desired_class = "ColorPrinter";
  request.constraints.push_back(
      {"cost_per_page", ConstraintOp::kLe, 0.2, true});
  auto matches = matcher.match(services_, request);
  for (const auto& match : matches) {
    EXPECT_LE(std::get<double>(match.service.properties.at("cost_per_page")),
              0.2)
        << match.service.name;
  }
  // pricey-color (0.80/page) must be gone.
  EXPECT_TRUE(std::none_of(matches.begin(), matches.end(), [](const Match& m) {
    return m.service.name == "pricey-color";
  }));
}

TEST_F(MatcherFixture, SemanticPreferenceRanksShortestQueueFirst) {
  // The paper's exact example: "a printer service that has the shortest
  // print queue ... will print in color but only within a prespecified cost
  // constraint."
  SemanticMatcher matcher(ontology_);
  ServiceRequest request;
  request.desired_class = "ColorPrinter";
  request.constraints.push_back(
      {"cost_per_page", ConstraintOp::kLe, 0.2, true});
  request.preferences.push_back({"queue_length", true, 1.0});
  auto matches = matcher.match(services_, request);
  ASSERT_GE(matches.size(), 2u);
  EXPECT_EQ(matches[0].service.name, "idle-color");
}

TEST_F(MatcherFixture, SemanticRanksAreMonotone) {
  SemanticMatcher matcher(ontology_);
  ServiceRequest request;
  request.desired_class = "PrinterService";
  request.preferences.push_back({"distance_m", true, 1.0});
  auto matches = matcher.match(services_, request);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].score, matches[i].score);
  }
}

TEST_F(MatcherFixture, SemanticMaxResultsTruncates) {
  SemanticMatcher matcher(ontology_);
  ServiceRequest request;
  request.desired_class = "PrinterService";
  request.max_results = 2;
  EXPECT_EQ(matcher.match(services_, request).size(), 2u);
}

TEST_F(MatcherFixture, SemanticUnknownClassNoMatches) {
  SemanticMatcher matcher(ontology_);
  ServiceRequest request;
  request.desired_class = "FluxCapacitor";
  EXPECT_TRUE(matcher.match(services_, request).empty());
}

TEST_F(MatcherFixture, ExactMatcherFindsInterface) {
  ExactInterfaceMatcher matcher;
  ServiceRequest request;
  request.required_interfaces.push_back("printIt()");
  auto matches = matcher.match(services_, request);
  EXPECT_EQ(matches.size(), services_.size());
  for (const auto& m : matches) EXPECT_DOUBLE_EQ(m.score, 1.0);
}

TEST_F(MatcherFixture, ExactMatcherCannotSubsume) {
  // Jini-style: asking for "ColorPrinter" misses the ColorLaserPrinter even
  // though it IS one — the expressiveness gap the paper calls out.
  ExactInterfaceMatcher matcher;
  ServiceRequest request;
  request.desired_class = "ColorPrinter";
  auto matches = matcher.match(services_, request);
  EXPECT_TRUE(std::none_of(matches.begin(), matches.end(), [](const Match& m) {
    return m.service.name == "combo";
  }));
  SemanticMatcher semantic(ontology_);
  auto semantic_matches = semantic.match(services_, request);
  EXPECT_TRUE(std::any_of(
      semantic_matches.begin(), semantic_matches.end(),
      [](const Match& m) { return m.service.name == "combo"; }));
}

TEST_F(MatcherFixture, ExactMatcherIgnoresInequalityConstraints) {
  ExactInterfaceMatcher matcher;
  ServiceRequest request;
  request.desired_class = "ColorPrinter";
  request.constraints.push_back(
      {"cost_per_page", ConstraintOp::kLe, 0.1, true});
  auto matches = matcher.match(services_, request);
  // The <= constraint is inexpressible, so over-broad results come back.
  EXPECT_TRUE(std::any_of(matches.begin(), matches.end(), [](const Match& m) {
    return std::get<double>(m.service.properties.at("cost_per_page")) > 0.1;
  }));
}

TEST_F(MatcherFixture, TwoWayMatchingEnforcesServiceRequirements) {
  // A solver that needs 512 MB of memory and a JVM to run.
  ServiceDescription needy;
  needy.name = "needy-solver";
  needy.service_class = "PdeSolver";
  needy.requirements["memory_mb"] = 512.0;
  needy.requirements["jvm"] = true;
  ServiceDescription lean;
  lean.name = "lean-solver";
  lean.service_class = "PdeSolver";
  std::vector<ServiceDescription> solvers{needy, lean};

  SemanticMatcher matcher(ontology_);
  ServiceRequest request;
  request.desired_class = "PdeSolver";
  request.enforce_requirements = true;
  // A sensor mote offers almost nothing: only the lean solver fits.
  request.offered["memory_mb"] = 64.0;
  auto on_mote = matcher.match(solvers, request);
  ASSERT_EQ(on_mote.size(), 1u);
  EXPECT_EQ(on_mote[0].service.name, "lean-solver");

  // A grid machine offers plenty: both fit.
  request.offered["memory_mb"] = 4096.0;
  request.offered["jvm"] = true;
  EXPECT_EQ(matcher.match(solvers, request).size(), 2u);

  // Without enforcement the requirements are informational only.
  request.enforce_requirements = false;
  request.offered.clear();
  EXPECT_EQ(matcher.match(solvers, request).size(), 2u);
}

TEST_F(MatcherFixture, RequirementsMetSemantics) {
  ServiceDescription s;
  s.requirements["bandwidth_bps"] = 1e6;
  s.requirements["os"] = std::string("linux");
  std::map<std::string, PropertyValue> offered;
  EXPECT_FALSE(requirements_met(s, offered));
  offered["bandwidth_bps"] = 2e6;  // numeric: offered >= required
  offered["os"] = std::string("linux");
  EXPECT_TRUE(requirements_met(s, offered));
  offered["bandwidth_bps"] = 5e5;
  EXPECT_FALSE(requirements_met(s, offered));
  offered["bandwidth_bps"] = 2e6;
  offered["os"] = std::string("windows");
  EXPECT_FALSE(requirements_met(s, offered));
}

TEST(ServiceWire, OfferedAndEnforceRoundTrip) {
  ServiceRequest r;
  r.desired_class = "PdeSolver";
  r.offered["memory_mb"] = 256.0;
  r.offered["jvm"] = true;
  r.enforce_requirements = true;
  auto parsed = parse_request(serialize(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->enforce_requirements);
  EXPECT_DOUBLE_EQ(std::get<double>(parsed->offered.at("memory_mb")), 256.0);
  EXPECT_EQ(std::get<bool>(parsed->offered.at("jvm")), true);
}

TEST_F(MatcherFixture, UuidMatcherExactHit) {
  UuidMatcher matcher;
  ServiceRequest request;
  request.uuid = Uuid{11, 22};
  auto matches = matcher.match(services_, request);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].service.name, "mono-laser");
}

TEST_F(MatcherFixture, UuidMatcherNoUuidNoMatches) {
  UuidMatcher matcher;
  ServiceRequest request;
  request.desired_class = "ColorPrinter";  // irrelevant to SDP
  EXPECT_TRUE(matcher.match(services_, request).empty());
}

// ---------------------------------------------------------------------------
// Broker agents
// ---------------------------------------------------------------------------

class BrokerFixture : public ::testing::Test {
 protected:
  BrokerFixture()
      : net_(sim_, common::Rng(3)),
        platform_(net_),
        ontology_(make_standard_ontology()) {}

  net::NodeId add_node(double x) {
    net::NodeConfig c;
    c.pos = {x, 0, 0};
    c.radio = net::LinkClass::wifi();
    c.unlimited_energy = true;
    return net_.add_node(c);
  }

  agent::AgentId add_broker(const std::string& name, net::NodeId node,
                            BrokerAgent** out = nullptr) {
    auto broker = std::make_unique<BrokerAgent>(name, node, ontology_);
    if (out) *out = broker.get();
    return platform_.register_agent(std::move(broker));
  }

  agent::AgentId add_client(net::NodeId node) {
    return platform_.register_agent(std::make_unique<agent::LambdaAgent>(
        "client", node, [](agent::LambdaAgent&, const agent::Envelope&) {}));
  }

  sim::Simulator sim_;
  net::Network net_;
  agent::AgentPlatform platform_;
  Ontology ontology_;
};

TEST_F(BrokerFixture, AdvertiseThenDiscover) {
  const auto n0 = add_node(0);
  const auto n1 = add_node(50);
  BrokerAgent* broker_raw = nullptr;
  const auto broker = add_broker("broker", n0, &broker_raw);
  const auto client = add_client(n1);

  auto service = make_printer("office-color", 2, 10, true, 0.1);
  service.provider = client;
  bool advertised = false;
  advertise(platform_, client, broker, service,
            [&](bool ok) { advertised = ok; });
  sim_.run();
  EXPECT_TRUE(advertised);
  EXPECT_EQ(broker_raw->registry().size(), 1u);

  ServiceRequest request;
  request.desired_class = "ColorPrinter";
  std::vector<Match> found;
  discover(platform_, client, broker, request, sim::SimTime::seconds(10.0),
           [&](std::vector<Match> matches) { found = std::move(matches); });
  sim_.run();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].service.name, "office-color");
  EXPECT_GT(found[0].score, 0.5);
}

TEST_F(BrokerFixture, UnadvertiseRemoves) {
  const auto n0 = add_node(0);
  BrokerAgent* broker_raw = nullptr;
  const auto broker = add_broker("broker", n0, &broker_raw);
  const auto client = add_client(n0);
  advertise(platform_, client, broker, make_printer("p", 1, 1, true, 0.1));
  sim_.run();
  EXPECT_EQ(broker_raw->registry().size(), 1u);
  unadvertise(platform_, client, broker, "p");
  sim_.run();
  EXPECT_EQ(broker_raw->registry().size(), 0u);
}

TEST_F(BrokerFixture, LeaseExpiresViaBrokerSweep) {
  const auto n0 = add_node(0);
  BrokerAgent* broker_raw = nullptr;
  const auto broker = add_broker("broker", n0, &broker_raw);
  const auto client = add_client(n0);
  auto service = make_printer("transient", 1, 1, true, 0.1);
  service.lease_expiry = sim::SimTime::seconds(3.0);
  advertise(platform_, client, broker, service);
  sim_.run();
  EXPECT_EQ(broker_raw->registry().size(), 1u);

  // Query after expiry: the sweep must hide the dead service.
  ServiceRequest request;
  request.desired_class = "ColorPrinter";
  std::vector<Match> found{Match{}};
  sim_.schedule(sim::SimTime::seconds(5.0), [&] {
    discover(platform_, client, broker, request, sim::SimTime::seconds(10.0),
             [&](std::vector<Match> matches) { found = std::move(matches); });
  });
  sim_.run();
  EXPECT_TRUE(found.empty());
}

TEST_F(BrokerFixture, FederationResolvesRemoteService) {
  const auto n0 = add_node(0);
  const auto n1 = add_node(50);
  BrokerAgent* local_raw = nullptr;
  BrokerAgent* remote_raw = nullptr;
  const auto local = add_broker("local", n0, &local_raw);
  const auto remote = add_broker("remote", n1, &remote_raw);
  local_raw->add_peer(remote);
  const auto client = add_client(n0);

  // Only the remote broker knows the printer.
  advertise(platform_, client, remote, make_printer("far-color", 1, 5, true, 0.1));
  sim_.run();

  ServiceRequest request;
  request.desired_class = "ColorPrinter";
  std::vector<Match> found;
  discover(platform_, client, local, request, sim::SimTime::seconds(10.0),
           [&](std::vector<Match> matches) { found = std::move(matches); });
  sim_.run();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].service.name, "far-color");
  EXPECT_EQ(local_raw->queries_forwarded(), 1u);
}

TEST_F(BrokerFixture, FederationDeduplicatesAcrossPeers) {
  const auto n0 = add_node(0);
  const auto n1 = add_node(50);
  const auto n2 = add_node(100);
  BrokerAgent* hub_raw = nullptr;
  const auto hub = add_broker("hub", n0, &hub_raw);
  const auto peer_a = add_broker("peer-a", n1);
  const auto peer_b = add_broker("peer-b", n2);
  hub_raw->add_peer(peer_a);
  hub_raw->add_peer(peer_b);
  const auto client = add_client(n0);

  // Both peers advertise the SAME service name.
  advertise(platform_, client, peer_a, make_printer("shared", 1, 5, true, 0.1));
  advertise(platform_, client, peer_b, make_printer("shared", 1, 5, true, 0.1));
  sim_.run();

  ServiceRequest request;
  request.desired_class = "ColorPrinter";
  std::vector<Match> found;
  discover(platform_, client, hub, request, sim::SimTime::seconds(10.0),
           [&](std::vector<Match> matches) { found = std::move(matches); });
  sim_.run();
  EXPECT_EQ(found.size(), 1u);
}

TEST_F(BrokerFixture, ForwardedQueriesAreNotReforwarded) {
  // Chain hub -> peer, peer has its own peer; a forwarded query must stop
  // at one hop (no infinite loops, no transitive fan-out).
  const auto n0 = add_node(0);
  BrokerAgent* hub_raw = nullptr;
  BrokerAgent* mid_raw = nullptr;
  const auto hub = add_broker("hub", n0, &hub_raw);
  const auto mid = add_broker("mid", n0, &mid_raw);
  const auto leaf = add_broker("leaf", n0);
  hub_raw->add_peer(mid);
  mid_raw->add_peer(leaf);
  const auto client = add_client(n0);

  // Only the leaf knows the service — 2 hops away, so it must NOT be found.
  advertise(platform_, client, leaf, make_printer("deep", 1, 5, true, 0.1));
  sim_.run();

  ServiceRequest request;
  request.desired_class = "ColorPrinter";
  std::vector<Match> found{Match{}};
  discover(platform_, client, hub, request, sim::SimTime::seconds(10.0),
           [&](std::vector<Match> matches) { found = std::move(matches); });
  sim_.run();
  EXPECT_TRUE(found.empty());
}

TEST_F(BrokerFixture, DiscoverEmptyOnUnreachableBroker) {
  const auto n0 = add_node(0);
  const auto n_far = add_node(99999);
  const auto broker = add_broker("broker", n_far);
  const auto client = add_client(n0);
  ServiceRequest request;
  request.desired_class = "ColorPrinter";
  bool called = false;
  std::vector<Match> found{Match{}};
  discover(platform_, client, broker, request, sim::SimTime::seconds(5.0),
           [&](std::vector<Match> matches) {
             called = true;
             found = std::move(matches);
           });
  sim_.run();
  EXPECT_TRUE(called);
  EXPECT_TRUE(found.empty());
}

}  // namespace
}  // namespace pgrid::discovery
