// Base-station failover (core/failover.hpp, core/sharded.hpp):
//
//  - checkpoint serialization: round-trip bit-identity (property sweep over
//    randomized checkpoints), clean rejection of truncated, corrupted and
//    trailing-byte images;
//  - kill switch: failover disabled is bit-identical to a build without the
//    subsystem; the protected dispatch path answers crash-free queries with
//    the same logical results as the legacy path;
//  - crash/restore: a kStationCrash erases station RAM, the last checkpoint
//    replays on restart, elapsed epoch slots are accounted as coverage-
//    graded losses, and the client's callback fires exactly once — and
//    deterministically, bit for bit, across reruns;
//  - the unprotected arm (checkpointing disabled) demonstrably loses the
//    crashed station's queries;
//  - shared groups re-admit through the sharing layer after a crash;
//  - Decision Maker experience survives a process restart (experience_path)
//    and a simulated crash (checkpoint embed + RAM reset on station-down);
//  - the chaos engine's base-station liveness callback fires for station
//    crashes (and base-landing kCrash faults) but not for sensor churn;
//  - sharded deployments: neighbor-region adoption over the lockstep
//    backhaul with migrate-back on restart, and roaming-client handoff
//    across a ShardMap boundary — both exactly-once, both bit-identical
//    across shard counts;
//  - StoreAndForwardDeputy bridges a station outage: envelopes queued in
//    the gap drain exactly once on restart, and give-up still fires once
//    AT the deadline when the station never returns.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "agent/platform.hpp"
#include "common/rng.hpp"
#include "core/failover.hpp"
#include "core/runtime.hpp"
#include "core/sharded.hpp"
#include "net/network.hpp"
#include "partition/persistence.hpp"
#include "query/canonical.hpp"
#include "sim/chaos.hpp"
#include "sim/simulator.hpp"

namespace pgrid {
namespace {

using core::Checkpoint;
using core::EpochRecord;
using core::FailoverManager;
using core::QueryCheckpoint;

// ---------------------------------------------------------------------------
// Checkpoint serialization: round trip + rejection
// ---------------------------------------------------------------------------

Checkpoint sample_checkpoint() {
  Checkpoint c;
  c.seq = 7;
  c.taken_at_s = 12.625;
  QueryCheckpoint q;
  q.id = 3;
  q.text = "SELECT AVG(temp) FROM sensors\nEPOCH DURATION 2";  // newline
  q.model = "tree-aggregate";
  q.total_epochs = 10;
  q.epoch_s = 2.0;
  q.deadline_s = 1.0 / 3.0;  // non-representable decimal
  q.started_s = 0.125;
  q.queued = false;
  EpochRecord e;
  e.ok = true;
  e.degraded = true;
  e.model = 2;
  e.value = -2.5e-7;
  e.coverage = 0.9375;
  e.accuracy = 1.0 / 7.0;
  e.energy_j = 1e300;
  e.response_s = 0.001953125;
  e.data_bytes = 123456789;
  e.compute_ops = 3.14159;
  q.epochs.push_back(e);
  e.ok = false;
  e.lost = true;
  e.coverage = 0.0;
  e.accuracy = 0.0;
  q.epochs.push_back(e);
  c.queries.push_back(q);
  QueryCheckpoint queued;
  queued.id = 9;
  queued.text = "SELECT MAX(temp) FROM sensors EPOCH DURATION 1";
  queued.queued = true;
  queued.total_epochs = 4;
  c.queries.push_back(queued);
  c.experience = "line one\nline two\nbinary-ish: \t\x01\x02\n";
  return c;
}

TEST(CheckpointFormat, RoundTripBitIdentity) {
  const Checkpoint c = sample_checkpoint();
  const std::string image = core::serialize_checkpoint(c);
  auto parsed = core::parse_checkpoint(image);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value(), c);
  // serialize(parse(t)) == t, byte for byte.
  EXPECT_EQ(core::serialize_checkpoint(parsed.value()), image);
}

TEST(CheckpointFormat, RandomizedRoundTripSweep) {
  common::Rng rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    Checkpoint c;
    c.seq = rng.next_u64() % 1000;
    c.taken_at_s = rng.uniform(0.0, 1e4);
    const std::size_t nq = rng.index(4);
    for (std::size_t i = 0; i < nq; ++i) {
      QueryCheckpoint q;
      q.id = rng.next_u64() % 10000;
      q.text = "SELECT AVG(temp) FROM sensors EPOCH DURATION " +
               std::to_string(1 + rng.index(5));
      if (rng.bernoulli(0.3)) q.text += "\n-- trailing comment";
      q.model = rng.bernoulli(0.5) ? "-" : "all-to-base";
      q.total_epochs = 1 + rng.index(20);
      q.epoch_s = rng.uniform(0.25, 4.0);
      q.deadline_s = rng.bernoulli(0.5) ? 0.0 : rng.uniform(1.0, 100.0);
      q.started_s = rng.uniform(0.0, 50.0);
      q.queued = rng.bernoulli(0.2);
      const std::size_t ne = rng.index(6);
      for (std::size_t k = 0; k < ne; ++k) {
        EpochRecord e;
        e.ok = rng.bernoulli(0.8);
        e.degraded = rng.bernoulli(0.2);
        e.lost = !e.ok && rng.bernoulli(0.5);
        e.model = static_cast<int>(rng.index(4));
        e.value = rng.normal(20.0, 5.0);
        e.coverage = rng.uniform01();
        e.accuracy = rng.uniform01();
        e.energy_j = rng.exponential(1.0);
        e.response_s = rng.exponential(10.0);
        e.data_bytes = rng.next_u64() % (1u << 20);
        e.compute_ops = rng.uniform(0.0, 1e9);
        q.epochs.push_back(e);
      }
      c.queries.push_back(std::move(q));
    }
    if (rng.bernoulli(0.7)) c.experience = "samples\n1 2 3\n4 5 6\n";
    const std::string image = core::serialize_checkpoint(c);
    auto parsed = core::parse_checkpoint(image);
    ASSERT_TRUE(parsed.ok()) << "trial " << trial << ": " << parsed.error();
    EXPECT_EQ(parsed.value(), c) << "trial " << trial;
    EXPECT_EQ(core::serialize_checkpoint(parsed.value()), image)
        << "trial " << trial;
  }
}

TEST(CheckpointFormat, RejectsEveryTruncation) {
  const std::string image = core::serialize_checkpoint(sample_checkpoint());
  for (std::size_t len = 0; len < image.size(); ++len) {
    auto parsed = core::parse_checkpoint(image.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes accepted";
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.error().empty());
    }
  }
}

TEST(CheckpointFormat, RejectsEverySingleByteCorruption) {
  const std::string image = core::serialize_checkpoint(sample_checkpoint());
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::string corrupt = image;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    auto parsed = core::parse_checkpoint(corrupt);
    EXPECT_FALSE(parsed.ok()) << "flip at byte " << i << " accepted";
  }
}

TEST(CheckpointFormat, RejectsTrailingBytes) {
  const std::string image = core::serialize_checkpoint(sample_checkpoint());
  auto parsed = core::parse_checkpoint(image + "x");
  EXPECT_FALSE(parsed.ok());
  parsed = core::parse_checkpoint(image + image);
  EXPECT_FALSE(parsed.ok());
}

TEST(CheckpointFormat, RejectsGarbage) {
  EXPECT_FALSE(core::parse_checkpoint("").ok());
  EXPECT_FALSE(core::parse_checkpoint("not a checkpoint\n").ok());
  EXPECT_FALSE(
      core::parse_checkpoint("pgrid-checkpoint-v2\nmeta 0 0 0\n").ok());
}

// ---------------------------------------------------------------------------
// Runtime configuration helpers
// ---------------------------------------------------------------------------

core::RuntimeConfig failover_config(bool enabled, std::uint64_t seed = 42) {
  core::RuntimeConfig config;
  config.seed = seed;
  config.sensors.sensor_count = 16;
  config.sensors.width_m = 60.0;
  config.sensors.height_m = 60.0;
  config.advertise_sensor_services = false;
  config.continuous_epochs = 10;
  config.reliability.enabled = true;  // coverage-graded degraded results
  config.failover.enabled = enabled;
  config.failover.checkpoint_period_s = 1.0;
  return config;
}

constexpr const char* kContinuousQuery =
    "SELECT AVG(temp) FROM sensors EPOCH DURATION 1";

/// Crash scenario on a single runtime: a kStationCrash downs the base
/// station at `crash_at` for `down_for`, wired to the failover manager.
struct CrashRun {
  core::QueryOutcome outcome;
  int done_count = 0;
  core::FailoverStats stats;
};

CrashRun run_crash_scenario(core::RuntimeConfig config, double crash_at,
                            double down_for) {
  core::PervasiveGridRuntime runtime(config);
  sim::ChaosEngine chaos(runtime.network(), config.seed);
  if (runtime.failover() != nullptr) {
    chaos.set_station_callback([&runtime](net::NodeId node, bool up) {
      runtime.failover()->on_station_transition(node, up);
    });
  }
  sim::Fault crash;
  crash.kind = sim::FaultKind::kStationCrash;
  crash.at = sim::SimTime::seconds(crash_at);
  crash.duration = sim::SimTime::seconds(down_for);
  crash.node = runtime.sensors().base_station();
  chaos.arm_schedule({crash});

  CrashRun result;
  runtime.submit(kContinuousQuery, [&result](core::QueryOutcome out) {
    ++result.done_count;
    result.outcome = std::move(out);
  });
  runtime.simulator().run();
  if (runtime.failover() != nullptr) {
    result.stats = runtime.failover()->stats();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Kill switch
// ---------------------------------------------------------------------------

struct Fingerprint {
  double value = 0.0;
  double energy_j = 0.0;
  double response_s = 0.0;
  double handheld_s = 0.0;
  net::NetworkStats net;
};

std::vector<Fingerprint> run_fingerprint_suite(core::RuntimeConfig config) {
  static const char* kQueries[] = {
      "SELECT temp FROM sensors WHERE sensor = 3",
      "SELECT AVG(temp) FROM sensors",
      "SELECT AVG(temp) FROM sensors EPOCH DURATION 2",
  };
  core::PervasiveGridRuntime runtime(std::move(config));
  std::vector<Fingerprint> prints;
  for (const char* text : kQueries) {
    runtime.reset_energy();
    const auto outcome = runtime.submit_and_run(text);
    Fingerprint p;
    p.value = outcome.actual.value;
    p.energy_j = outcome.actual.energy_j;
    p.response_s = outcome.actual.response_s;
    p.handheld_s = outcome.handheld_response_s;
    p.net = runtime.network().stats();
    prints.push_back(p);
  }
  return prints;
}

void expect_identical(const std::vector<Fingerprint>& a,
                      const std::vector<Fingerprint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value) << "query " << i;
    EXPECT_EQ(a[i].energy_j, b[i].energy_j) << "query " << i;
    EXPECT_EQ(a[i].response_s, b[i].response_s) << "query " << i;
    EXPECT_EQ(a[i].handheld_s, b[i].handheld_s) << "query " << i;
    EXPECT_EQ(a[i].net.transmissions, b[i].net.transmissions) << "query " << i;
    EXPECT_EQ(a[i].net.delivered, b[i].net.delivered) << "query " << i;
    EXPECT_EQ(a[i].net.dropped, b[i].net.dropped) << "query " << i;
    EXPECT_EQ(a[i].net.bytes_sent, b[i].net.bytes_sent) << "query " << i;
    EXPECT_EQ(a[i].net.energy_j, b[i].net.energy_j) << "query " << i;
  }
}

TEST(FailoverKillSwitch, DisabledMatchesDefaultConfig) {
  // `failover.enabled = false` IS the default — the manager is never built
  // and dormant knobs must change nothing, to the bit.
  auto defaults = failover_config(false);
  auto explicit_off = failover_config(false);
  explicit_off.failover.checkpoint_period_s = 0.25;
  explicit_off.failover.checkpoint_on_admit = false;
  explicit_off.failover.restart_replay_s = 1.0;
  expect_identical(run_fingerprint_suite(defaults),
                   run_fingerprint_suite(explicit_off));
}

TEST(FailoverKillSwitch, ProtectedPathMatchesLegacyAnswersCrashFree) {
  // Without a crash the protected dispatch re-derives the same plan, makes
  // the same model decisions and runs the same epochs as the legacy path —
  // the logical results must agree exactly.
  core::PervasiveGridRuntime legacy(failover_config(false));
  const auto baseline = legacy.submit_and_run(kContinuousQuery);
  ASSERT_TRUE(baseline.ok) << baseline.error;

  core::PervasiveGridRuntime prot(failover_config(true));
  const auto shielded = prot.submit_and_run(kContinuousQuery);
  ASSERT_TRUE(shielded.ok) << shielded.error;

  ASSERT_EQ(shielded.epochs.size(), baseline.epochs.size());
  for (std::size_t i = 0; i < baseline.epochs.size(); ++i) {
    EXPECT_EQ(shielded.epochs[i].value, baseline.epochs[i].value)
        << "epoch " << i;
    EXPECT_EQ(shielded.epochs[i].coverage, baseline.epochs[i].coverage)
        << "epoch " << i;
  }
  EXPECT_EQ(shielded.actual.value, baseline.actual.value);
  EXPECT_EQ(shielded.coverage, baseline.coverage);
  EXPECT_EQ(shielded.epoch_models, baseline.epoch_models);
  // The protected run took checkpoints and charged them to its own traces.
  ASSERT_NE(prot.failover(), nullptr);
  EXPECT_GT(prot.failover()->stats().checkpoints, 0u);
}

// ---------------------------------------------------------------------------
// Crash / restore on a single station
// ---------------------------------------------------------------------------

TEST(FailoverCrash, RestoreCompletesExactlyOnceWithGapAccounting) {
  const auto run = run_crash_scenario(failover_config(true), 3.4, 2.0);
  EXPECT_EQ(run.done_count, 1) << "completion must fire exactly once";
  ASSERT_EQ(run.outcome.epochs.size(), 10u)
      << "every epoch slot accounted, run or lost";
  EXPECT_TRUE(run.outcome.ok) << run.outcome.error;
  EXPECT_TRUE(run.outcome.degraded)
      << "a crashed window reads as degraded coverage, not failure";
  EXPECT_LT(run.outcome.coverage, 1.0);
  EXPECT_GT(run.outcome.coverage, 0.0);
  // The gap epochs are explicit zero-coverage losses.
  std::size_t lost = 0;
  for (const auto& epoch : run.outcome.epochs) {
    if (!epoch.ok && epoch.coverage == 0.0) ++lost;
  }
  EXPECT_GE(lost, 1u);
  EXPECT_EQ(run.stats.station_crashes, 1u);
  EXPECT_EQ(run.stats.restores, 1u);
  EXPECT_EQ(run.stats.queries_restored, 1u);
  EXPECT_EQ(run.stats.queries_lost, 0u);
  EXPECT_GE(run.stats.epochs_lost_in_gap, 1u);
  EXPECT_GT(run.stats.checkpoints, 0u);
  EXPECT_GT(run.stats.checkpoint_bytes, 0u);
}

TEST(FailoverCrash, CrashRestoreIsDeterministic) {
  const auto a = run_crash_scenario(failover_config(true), 3.4, 2.0);
  const auto b = run_crash_scenario(failover_config(true), 3.4, 2.0);
  ASSERT_EQ(a.done_count, 1);
  ASSERT_EQ(b.done_count, 1);
  ASSERT_EQ(a.outcome.epochs.size(), b.outcome.epochs.size());
  for (std::size_t i = 0; i < a.outcome.epochs.size(); ++i) {
    EXPECT_EQ(a.outcome.epochs[i].value, b.outcome.epochs[i].value)
        << "epoch " << i;
    EXPECT_EQ(a.outcome.epochs[i].ok, b.outcome.epochs[i].ok) << "epoch " << i;
    EXPECT_EQ(a.outcome.epochs[i].coverage, b.outcome.epochs[i].coverage)
        << "epoch " << i;
  }
  EXPECT_EQ(a.outcome.actual.value, b.outcome.actual.value);
  EXPECT_EQ(a.outcome.coverage, b.outcome.coverage);
  EXPECT_EQ(a.stats.epochs_lost_in_gap, b.stats.epochs_lost_in_gap);
  EXPECT_EQ(a.stats.checkpoints, b.stats.checkpoints);
}

TEST(FailoverCrash, UnprotectedArmLosesTheQuery) {
  // checkpoint_period_s <= 0 disables checkpointing entirely: the crash
  // erases the only copy of the query's state and the restart replay finds
  // nothing — the EXP-R2 "unprotected" control arm.
  auto config = failover_config(true);
  config.failover.checkpoint_period_s = 0.0;
  const auto run = run_crash_scenario(config, 3.4, 2.0);
  EXPECT_EQ(run.done_count, 1)
      << "even total loss answers the client exactly once";
  EXPECT_FALSE(run.outcome.ok);
  EXPECT_EQ(run.outcome.coverage, 0.0);
  EXPECT_EQ(run.stats.queries_lost, 1u);
  EXPECT_EQ(run.stats.queries_restored, 0u);
  EXPECT_EQ(run.stats.checkpoints, 0u);
}

TEST(FailoverCrash, SharedGroupReadmitsAfterCrash) {
  auto config = failover_config(true);
  config.sharing.enabled = true;
  core::PervasiveGridRuntime runtime(config);
  sim::ChaosEngine chaos(runtime.network(), config.seed);
  chaos.set_station_callback([&runtime](net::NodeId node, bool up) {
    runtime.failover()->on_station_transition(node, up);
  });
  sim::Fault crash;
  crash.kind = sim::FaultKind::kStationCrash;
  crash.at = sim::SimTime::seconds(3.4);
  crash.duration = sim::SimTime::seconds(1.5);
  crash.node = runtime.sensors().base_station();
  chaos.arm_schedule({crash});

  int done_a = 0;
  int done_b = 0;
  core::QueryOutcome out_a;
  core::QueryOutcome out_b;
  runtime.submit(kContinuousQuery, [&](core::QueryOutcome out) {
    ++done_a;
    out_a = std::move(out);
  });
  runtime.submit(kContinuousQuery, [&](core::QueryOutcome out) {
    ++done_b;
    out_b = std::move(out);
  });
  runtime.simulator().run();

  EXPECT_EQ(done_a, 1);
  EXPECT_EQ(done_b, 1);
  EXPECT_EQ(out_a.epochs.size(), 10u);
  EXPECT_EQ(out_b.epochs.size(), 10u);
  EXPECT_TRUE(out_a.ok) << out_a.error;
  EXPECT_TRUE(out_b.ok) << out_b.error;
  // The crash tore every group down; the resumed segments re-admitted and
  // the registry drained back to zero at the end.
  ASSERT_NE(runtime.sharing(), nullptr);
  EXPECT_EQ(runtime.sharing()->registry().active_groups(), 0u);
  EXPECT_GT(runtime.sharing()->registry().stats().groups_torn_down, 0u);
  EXPECT_EQ(runtime.failover()->stats().station_crashes, 1u);
  EXPECT_EQ(runtime.failover()->stats().queries_restored, 2u);
}

// ---------------------------------------------------------------------------
// Experience persistence
// ---------------------------------------------------------------------------

TEST(FailoverExperience, SurvivesProcessRestartViaExperiencePath) {
  const std::string path =
      ::testing::TempDir() + "pgrid_failover_experience.txt";
  std::remove(path.c_str());
  std::string before;
  {
    auto config = failover_config(true);
    config.failover.experience_path = path;
    core::PervasiveGridRuntime runtime(config);
    (void)runtime.submit_and_run("SELECT AVG(temp) FROM sensors");
    (void)runtime.submit_and_run("SELECT MAX(temp) FROM sensors");
    before = partition::save_experience(runtime.decision_maker());
    EXPECT_FALSE(before.empty());
  }  // destructor persists the experience file
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "experience file missing: " << path;
  }
  auto config = failover_config(true);
  config.failover.experience_path = path;
  core::PervasiveGridRuntime runtime(config);
  EXPECT_EQ(partition::save_experience(runtime.decision_maker()), before)
      << "reloaded experience must reproduce the saved learner state";
  std::remove(path.c_str());
}

TEST(FailoverExperience, CrashResetsRamAndRestoresFromCheckpoint) {
  auto config = failover_config(true);
  core::PervasiveGridRuntime runtime(config);
  sim::ChaosEngine chaos(runtime.network(), config.seed);
  chaos.set_station_callback([&runtime](net::NodeId node, bool up) {
    runtime.failover()->on_station_transition(node, up);
  });
  bool checked_mid_outage = false;
  std::string at_crash;
  sim::Fault crash;
  crash.kind = sim::FaultKind::kStationCrash;
  crash.at = sim::SimTime::seconds(3.4);
  crash.duration = sim::SimTime::seconds(2.0);
  crash.node = runtime.sensors().base_station();
  chaos.arm_schedule({crash});
  // Right after the crash lands, the learner's RAM is gone.
  runtime.simulator().schedule_at(
      sim::SimTime::seconds(3.5), [&] {
        at_crash = partition::save_experience(runtime.decision_maker());
        checked_mid_outage = true;
      });

  int done = 0;
  runtime.submit(kContinuousQuery, [&](core::QueryOutcome) { ++done; });
  runtime.simulator().run();

  EXPECT_EQ(done, 1);
  ASSERT_TRUE(checked_mid_outage);
  const std::string empty_learner =
      partition::save_experience(partition::DecisionMaker{});
  EXPECT_EQ(at_crash, empty_learner)
      << "station-down must wipe the learner's in-RAM experience";
  // After the replay the learner has re-accumulated (checkpoint reload plus
  // post-restore epochs).
  EXPECT_NE(partition::save_experience(runtime.decision_maker()),
            empty_learner);
}

// ---------------------------------------------------------------------------
// Chaos station-liveness callback
// ---------------------------------------------------------------------------

TEST(ChaosStationCallback, FiresForStationFaultsOnly) {
  auto config = failover_config(false);
  core::PervasiveGridRuntime runtime(config);
  sim::ChaosEngine chaos(runtime.network(), 7);
  std::vector<std::pair<net::NodeId, bool>> events;
  chaos.set_station_callback([&](net::NodeId node, bool up) {
    events.emplace_back(node, up);
  });
  const net::NodeId base = runtime.sensors().base_station();
  const net::NodeId sensor = runtime.sensors().sensors()[0];

  sim::Fault station;
  station.kind = sim::FaultKind::kStationCrash;
  station.at = sim::SimTime::seconds(1.0);
  station.duration = sim::SimTime::seconds(1.0);
  station.node = base;
  sim::Fault generic_on_base;
  generic_on_base.kind = sim::FaultKind::kCrash;
  generic_on_base.at = sim::SimTime::seconds(4.0);
  generic_on_base.duration = sim::SimTime::seconds(1.0);
  generic_on_base.node = base;
  sim::Fault generic_on_sensor;
  generic_on_sensor.kind = sim::FaultKind::kCrash;
  generic_on_sensor.at = sim::SimTime::seconds(7.0);
  generic_on_sensor.duration = sim::SimTime::seconds(1.0);
  generic_on_sensor.node = sensor;
  chaos.arm_schedule({station, generic_on_base, generic_on_sensor});
  runtime.simulator().run();

  ASSERT_EQ(events.size(), 4u)
      << "two station faults, each a down + up transition";
  EXPECT_EQ(events[0], std::make_pair(base, false));
  EXPECT_EQ(events[1], std::make_pair(base, true));
  EXPECT_EQ(events[2], std::make_pair(base, false));
  EXPECT_EQ(events[3], std::make_pair(base, true));
  EXPECT_TRUE(chaos.quiescent());
}

// ---------------------------------------------------------------------------
// Sharded deployments: adoption + roaming handoff
// ---------------------------------------------------------------------------

core::ShardedDeploymentConfig sharded_failover_config(std::size_t shards) {
  core::ShardedDeploymentConfig config;
  config.base = failover_config(true);
  config.base.sensors.noise_std = 0.0;
  config.base.pde_resolution = 9;
  config.base.pool_threads = 1;
  config.base.sharing.enabled = true;  // adoption re-admits through sharing
  config.base.failover.checkpoint_period_s = 0.5;
  config.base.sharding.shards = shards;
  config.base.sharding.window = sim::SimTime::milliseconds(5);
  config.regions = 2;
  config.region_spacing_m = 400.0;
  config.backhaul_latency = sim::SimTime::milliseconds(10);
  return config;
}

struct AdoptionRun {
  core::QueryOutcome outcome;
  int done_count = 0;
  core::ShardedFailoverStats stats;
};

AdoptionRun run_adoption_scenario(std::size_t shards) {
  core::ShardedDeployment dep(sharded_failover_config(shards));
  dep.arm_station_failover(0);
  dep.arm_station_failover(1);
  sim::Fault crash;
  crash.kind = sim::FaultKind::kStationCrash;
  crash.at = sim::SimTime::seconds(2.7);
  crash.duration = sim::SimTime::seconds(2.0);
  crash.node = dep.region(0).sensors().base_station();
  dep.inject_remote(0, crash);

  AdoptionRun run;
  dep.submit(0, sim::SimTime::milliseconds(200), kContinuousQuery,
             [&run](core::QueryOutcome out) {
               ++run.done_count;
               run.outcome = std::move(out);
             });
  dep.run();
  run.stats = dep.failover_stats();
  return run;
}

TEST(ShardedAdoption, NeighborAdoptsCrashedRegionAndMigratesBack) {
  const auto run = run_adoption_scenario(1);
  EXPECT_EQ(run.done_count, 1) << "the client is answered exactly once";
  ASSERT_EQ(run.outcome.epochs.size(), 10u);
  EXPECT_TRUE(run.outcome.ok) << run.outcome.error;
  // Epochs ran somewhere throughout: the adopter covered the outage, so
  // coverage stays well above a total-loss window.
  EXPECT_GT(run.outcome.coverage, 0.0);
  EXPECT_EQ(run.stats.station_outages, 1u);
  EXPECT_EQ(run.stats.checkpoints_shipped, 1u);
  EXPECT_GE(run.stats.queries_adopted, 1u);
  EXPECT_EQ(run.stats.migrations_back, 1u)
      << "the restart must reclaim the in-flight adoption";
}

TEST(ShardedAdoption, BitIdenticalAcrossShardCounts) {
  const auto one = run_adoption_scenario(1);
  const auto two = run_adoption_scenario(2);
  ASSERT_EQ(one.done_count, 1);
  ASSERT_EQ(two.done_count, 1);
  ASSERT_EQ(one.outcome.epochs.size(), two.outcome.epochs.size());
  for (std::size_t i = 0; i < one.outcome.epochs.size(); ++i) {
    EXPECT_EQ(one.outcome.epochs[i].value, two.outcome.epochs[i].value)
        << "epoch " << i;
    EXPECT_EQ(one.outcome.epochs[i].ok, two.outcome.epochs[i].ok)
        << "epoch " << i;
  }
  EXPECT_EQ(one.outcome.actual.value, two.outcome.actual.value);
  EXPECT_EQ(one.outcome.coverage, two.outcome.coverage);
  EXPECT_EQ(one.stats.station_outages, two.stats.station_outages);
  EXPECT_EQ(one.stats.queries_adopted, two.stats.queries_adopted);
  EXPECT_EQ(one.stats.migrations_back, two.stats.migrations_back);
}

TEST(RoamingHandoff, QueryFollowsClientAcrossShardBoundary) {
  core::ShardedDeployment dep(sharded_failover_config(1));
  // The handheld walks from region 0 toward region 1; when the shared
  // ShardMap says it crossed the boundary, its standing query re-homes.
  const net::NodeId handheld = dep.region(0).handheld_node();
  const net::Vec3 start = dep.region_origin(0);
  const net::Vec3 goal = dep.region_origin(1);
  const net::RegionId home = dep.shard_map(0).region_of_pos(start);
  auto crossed = std::make_shared<bool>(false);
  auto& sim0 = dep.region(0).simulator();
  std::function<void(int)> walk = [&, crossed](int step) {
    if (step > 20) return;
    const double t = static_cast<double>(step) / 20.0;
    net::Vec3 pos{start.x + (goal.x - start.x) * t,
                  start.y + (goal.y - start.y) * t, 0.0};
    dep.region(0).network().move_node(handheld, pos);
    if (!*crossed && dep.shard_map(0).region_of_pos(pos) != home) {
      *crossed = true;
      // First (and only) protected query of region 0 has id 1.
      dep.handoff_query(0, 1, sim0.now(), 1);
    }
    sim0.schedule(sim::SimTime::milliseconds(250),
                  [&walk, step] { walk(step + 1); });
  };
  sim0.schedule_at(sim::SimTime::seconds(1.0), [&walk] { walk(0); });

  int done = 0;
  core::QueryOutcome outcome;
  dep.submit(0, sim::SimTime::milliseconds(200), kContinuousQuery,
             [&](core::QueryOutcome out) {
               ++done;
               outcome = std::move(out);
             });
  dep.run();

  EXPECT_TRUE(*crossed) << "the walk never crossed the shard boundary";
  EXPECT_EQ(done, 1) << "the roaming client is answered exactly once";
  ASSERT_EQ(outcome.epochs.size(), 10u);
  EXPECT_TRUE(outcome.ok) << outcome.error;
  const auto stats = dep.failover_stats();
  EXPECT_EQ(stats.handoffs, 1u);
  EXPECT_GE(stats.queries_adopted, 1u);
  EXPECT_EQ(stats.station_outages, 0u);
}

// ---------------------------------------------------------------------------
// StoreAndForwardDeputy bridges the station-outage gap
// ---------------------------------------------------------------------------

class DeputyOutageFixture : public ::testing::Test {
 protected:
  DeputyOutageFixture()
      : net_(sim_, common::Rng(7)), platform_(net_), chaos_(net_, 11) {}

  net::NodeId add_node(double x, double y,
                       net::NodeKind kind = net::NodeKind::kGeneric) {
    net::NodeConfig c;
    c.pos = {x, y, 0.0};
    c.radio = net::LinkClass::wifi();
    c.kind = kind;
    c.unlimited_energy = true;
    return net_.add_node(c);
  }

  sim::Simulator sim_;
  net::Network net_;
  agent::AgentPlatform platform_;
  sim::ChaosEngine chaos_;
};

TEST_F(DeputyOutageFixture, GapQueuedEnvelopesDrainExactlyOnce) {
  const auto client = add_node(0, 0);
  const auto station = add_node(50, 0, net::NodeKind::kBaseStation);
  std::vector<agent::Envelope> inbox;
  const auto sender_id =
      platform_.register_agent(std::make_unique<agent::LambdaAgent>(
          "client", client,
          [](agent::LambdaAgent&, const agent::Envelope&) {}));
  auto deputy = std::make_unique<agent::StoreAndForwardDeputy>(
      sim::SimTime::seconds(0.5), sim::SimTime::seconds(60.0));
  auto* deputy_raw = deputy.get();
  const auto receiver_id =
      platform_.register_agent(std::make_unique<agent::LambdaAgent>(
                                   "station-svc", station,
                                   [&inbox](agent::LambdaAgent&,
                                            const agent::Envelope& env) {
                                     inbox.push_back(env);
                                   }),
                               std::move(deputy));

  sim::Fault crash;
  crash.kind = sim::FaultKind::kStationCrash;
  crash.at = sim::SimTime::seconds(0.5);
  crash.duration = sim::SimTime::seconds(4.0);
  crash.node = station;
  chaos_.arm_schedule({crash});

  int delivered = 0;
  for (int i = 0; i < 3; ++i) {
    sim_.schedule_at(sim::SimTime::seconds(1.0 + 0.5 * i), [&, i] {
      agent::Envelope env;
      env.sender = sender_id;
      env.receiver = receiver_id;
      env.payload = "gap-" + std::to_string(i);
      platform_.send(env, [&delivered](bool ok) {
        if (ok) ++delivered;
      });
    });
  }
  sim_.run();

  EXPECT_EQ(delivered, 3) << "every gap-queued envelope reports delivery";
  ASSERT_EQ(inbox.size(), 3u) << "each envelope drains exactly once";
  std::vector<std::string> payloads;
  for (const auto& env : inbox) payloads.push_back(env.payload);
  std::sort(payloads.begin(), payloads.end());
  EXPECT_EQ(payloads,
            (std::vector<std::string>{"gap-0", "gap-1", "gap-2"}));
  EXPECT_EQ(deputy_raw->queued(), 0u);
  EXPECT_GT(deputy_raw->attempts(), 3u) << "the gap forced retries";
  EXPECT_GE(sim_.now().to_seconds(), 4.5) << "drain waited for the restart";
}

TEST_F(DeputyOutageFixture, GiveUpFiresOnceAtDeadlineWhenStationNeverReturns) {
  // Regression: done(false) must fire exactly once AT the deadline even
  // when the outage outlives the delivery budget.
  const auto client = add_node(0, 0);
  const auto station = add_node(50, 0, net::NodeKind::kBaseStation);
  std::vector<agent::Envelope> inbox;
  const auto sender_id =
      platform_.register_agent(std::make_unique<agent::LambdaAgent>(
          "client", client,
          [](agent::LambdaAgent&, const agent::Envelope&) {}));
  const auto receiver_id = platform_.register_agent(
      std::make_unique<agent::LambdaAgent>(
          "station-svc", station,
          [&inbox](agent::LambdaAgent&, const agent::Envelope& env) {
            inbox.push_back(env);
          }),
      std::make_unique<agent::StoreAndForwardDeputy>(
          sim::SimTime::seconds(0.5), sim::SimTime::seconds(3.0)));

  sim::Fault crash;
  crash.kind = sim::FaultKind::kStationCrash;
  crash.at = sim::SimTime::seconds(0.5);
  crash.duration = sim::SimTime::seconds(600.0);  // outlives the budget
  crash.node = station;
  chaos_.arm_schedule({crash});

  int done_count = 0;
  bool last_result = true;
  sim::SimTime done_at{};
  sim_.schedule_at(sim::SimTime::seconds(1.0), [&] {
    agent::Envelope env;
    env.sender = sender_id;
    env.receiver = receiver_id;
    env.payload = "doomed";
    platform_.send(env, [&](bool delivered) {
      ++done_count;
      last_result = delivered;
      done_at = sim_.now();
    });
  });
  sim_.run();

  EXPECT_EQ(done_count, 1) << "done must fire exactly once";
  EXPECT_FALSE(last_result);
  EXPECT_EQ(done_at, sim::SimTime::seconds(4.0))
      << "failure reports AT the deadline (send + give_up_after)";
  EXPECT_TRUE(inbox.empty());
}

}  // namespace
}  // namespace pgrid
