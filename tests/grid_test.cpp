// Unit tests for the grid substrate: heat problems, Jacobi/CG solvers
// (serial, parallel, cross-checked), temperature-distribution glue, and the
// grid scheduler.
#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hpp"
#include "grid/heat_problem.hpp"
#include "grid/infrastructure.hpp"
#include "grid/solvers.hpp"
#include "grid/temperature.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace pgrid::grid {
namespace {

TEST(HeatProblem, BoundaryIsFixed) {
  HeatProblem p(5, 5, 1, 20.0);
  EXPECT_EQ(p.cells(), 25u);
  EXPECT_EQ(p.fixed_count(), 16u);  // the ring of a 5x5 grid
  EXPECT_EQ(p.free_count(), 9u);
  EXPECT_TRUE(p.is_fixed(p.index(0, 0)));
  EXPECT_TRUE(p.is_fixed(p.index(4, 2)));
  EXPECT_FALSE(p.is_fixed(p.index(2, 2)));
  EXPECT_DOUBLE_EQ(p.fixed_value(p.index(0, 0)), 20.0);
}

TEST(HeatProblem, FixInteriorCell) {
  HeatProblem p(5, 5, 1, 20.0);
  p.fix(2, 2, 0, 100.0);
  EXPECT_TRUE(p.is_fixed(p.index(2, 2)));
  EXPECT_DOUBLE_EQ(p.fixed_value(p.index(2, 2)), 100.0);
  EXPECT_EQ(p.free_count(), 8u);
  // Re-fixing does not double count.
  p.fix(2, 2, 0, 150.0);
  EXPECT_EQ(p.free_count(), 8u);
}

TEST(HeatProblem, NeighborCounts2D) {
  HeatProblem p(4, 4, 1, 0.0);
  std::size_t nb[6];
  EXPECT_EQ(p.neighbors(p.index(0, 0), nb), 2u);  // corner
  EXPECT_EQ(p.neighbors(p.index(1, 0), nb), 3u);  // edge
  EXPECT_EQ(p.neighbors(p.index(1, 1), nb), 4u);  // interior
}

TEST(HeatProblem, NeighborCounts3D) {
  HeatProblem p(4, 4, 4, 0.0);
  std::size_t nb[6];
  EXPECT_EQ(p.neighbors(p.index(0, 0, 0), nb), 3u);
  EXPECT_EQ(p.neighbors(p.index(1, 1, 1), nb), 6u);
  EXPECT_TRUE(p.is_3d());
}

TEST(Solvers, JacobiUniformBoundaryGivesUniformField) {
  HeatProblem p(8, 8, 1, 42.0);
  std::vector<double> u;
  const auto stats = jacobi_solve(p, u);
  EXPECT_TRUE(stats.converged);
  for (double v : u) EXPECT_NEAR(v, 42.0, 1e-4);
}

TEST(Solvers, CgUniformBoundaryGivesUniformField) {
  HeatProblem p(8, 8, 1, 42.0);
  std::vector<double> u;
  const auto stats = cg_solve(p, u);
  EXPECT_TRUE(stats.converged);
  for (double v : u) EXPECT_NEAR(v, 42.0, 1e-6);
}

TEST(Solvers, LinearProfileIsExactSolution) {
  // Fix left edge at 0 and right edge at 30 on a strip: the discrete
  // harmonic solution is a linear ramp.
  const std::size_t nx = 11;
  const std::size_t ny = 5;
  HeatProblem p(nx, ny, 1, 0.0);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double v = 3.0 * static_cast<double>(ix);
      const bool edge = ix == 0 || ix + 1 == nx || iy == 0 || iy + 1 == ny;
      if (edge) p.fix(ix, iy, 0, v);
    }
  }
  std::vector<double> u;
  const auto stats = cg_solve(p, u, 1e-12);
  EXPECT_TRUE(stats.converged);
  for (std::size_t iy = 1; iy + 1 < ny; ++iy) {
    for (std::size_t ix = 1; ix + 1 < nx; ++ix) {
      EXPECT_NEAR(u[p.index(ix, iy)], 3.0 * static_cast<double>(ix), 1e-6);
    }
  }
}

TEST(Solvers, JacobiAndCgAgree) {
  HeatProblem p(12, 12, 1, 20.0);
  p.fix(6, 6, 0, 300.0);  // hot spot
  std::vector<double> uj;
  std::vector<double> uc;
  const auto js = jacobi_solve(p, uj, 1e-9, 100000);
  const auto cs = cg_solve(p, uc, 1e-12);
  ASSERT_TRUE(js.converged);
  ASSERT_TRUE(cs.converged);
  for (std::size_t i = 0; i < uj.size(); ++i) EXPECT_NEAR(uj[i], uc[i], 1e-3);
}

TEST(Solvers, CgConvergesInFarFewerIterations) {
  HeatProblem p(24, 24, 1, 20.0);
  p.fix(12, 12, 0, 400.0);
  std::vector<double> uj;
  std::vector<double> uc;
  const auto js = jacobi_solve(p, uj, 1e-6, 100000);
  const auto cs = cg_solve(p, uc, 1e-8);
  ASSERT_TRUE(js.converged);
  ASSERT_TRUE(cs.converged);
  EXPECT_LT(cs.iterations * 5, js.iterations);
}

TEST(Solvers, ParallelMatchesSerial) {
  HeatProblem p(20, 20, 4, 20.0);
  p.fix(10, 10, 2, 500.0);
  common::ThreadPool pool(4);
  std::vector<double> serial;
  std::vector<double> parallel;
  const auto s1 = cg_solve(p, serial, 1e-10);
  const auto s2 = cg_solve(p, parallel, 1e-10, 10000, &pool);
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s2.converged);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i], parallel[i], 1e-6);
  }
}

TEST(Solvers, JacobiParallelMatchesSerial) {
  HeatProblem p(16, 16, 1, 20.0);
  p.fix(8, 8, 0, 200.0);
  common::ThreadPool pool(3);
  std::vector<double> serial;
  std::vector<double> parallel;
  jacobi_solve(p, serial, 1e-8, 100000);
  jacobi_solve(p, parallel, 1e-8, 100000, &pool);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i], parallel[i], 1e-9)
        << "Jacobi sweeps are order-independent";
  }
}

TEST(Solvers, MaximumPrincipleHolds) {
  // The discrete harmonic solution stays within the Dirichlet range.
  HeatProblem p(15, 15, 1, 20.0);
  p.fix(7, 7, 0, 600.0);
  std::vector<double> u;
  cg_solve(p, u, 1e-10);
  for (double v : u) {
    EXPECT_GE(v, 20.0 - 1e-6);
    EXPECT_LE(v, 600.0 + 1e-6);
  }
}

TEST(Solvers, FlopsReportedGrowWithProblemSize) {
  std::vector<double> u1;
  std::vector<double> u2;
  HeatProblem small(8, 8, 1, 20.0);
  small.fix(4, 4, 0, 100.0);
  HeatProblem big(32, 32, 1, 20.0);
  big.fix(16, 16, 0, 100.0);
  const auto s = cg_solve(small, u1);
  const auto b = cg_solve(big, u2);
  EXPECT_GT(b.flops, s.flops * 4);
}

TEST(Temperature, SolveDistributionFindsHotSpot) {
  // Readings: cool ring, hot center.
  std::vector<Reading> readings;
  readings.push_back({{50, 50, 0}, 400.0});
  readings.push_back({{10, 10, 0}, 22.0});
  readings.push_back({{90, 10, 0}, 22.0});
  readings.push_back({{10, 90, 0}, 22.0});
  readings.push_back({{90, 90, 0}, 22.0});
  auto result = solve_temperature_distribution(readings, 100, 100, 0.0, 21,
                                               21, 1, 20.0);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_NEAR(result.grid.value_at({50, 50, 0}), 400.0, 1.0);
  EXPECT_LT(result.grid.value_at({5, 5, 0}), 50.0);
  EXPECT_NEAR(result.grid.max_value(), 400.0, 1.0);
  EXPECT_GE(result.grid.min_value(), 19.9);
}

TEST(Temperature, ThreeDSolve) {
  std::vector<Reading> readings;
  readings.push_back({{50, 50, 5}, 300.0});
  auto result = solve_temperature_distribution(readings, 100, 100, 10.0, 11,
                                               11, 5, 20.0);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_EQ(result.grid.nz, 5u);
  EXPECT_GT(result.grid.value_at({50, 50, 5}), 100.0);
}

TEST(Temperature, EmptyReadingsGiveAmbientField) {
  auto result =
      solve_temperature_distribution({}, 100, 100, 0.0, 9, 9, 1, 18.0);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_NEAR(result.grid.max_value(), 18.0, 1e-6);
  EXPECT_NEAR(result.grid.min_value(), 18.0, 1e-6);
}

TEST(Temperature, FlopEstimateScales) {
  const double small = estimate_distribution_flops(8, 8, 8, SolverKind::kCg);
  const double big = estimate_distribution_flops(32, 32, 32, SolverKind::kCg);
  EXPECT_GT(big, small * 16);
  EXPECT_GT(estimate_distribution_flops(16, 16, 16, SolverKind::kJacobi),
            estimate_distribution_flops(16, 16, 16, SolverKind::kCg));
}

class GridInfraFixture : public ::testing::Test {
 protected:
  GridInfraFixture() : net_(sim_, common::Rng(17)) {
    net::NodeConfig base;
    base.kind = net::NodeKind::kBaseStation;
    base.unlimited_energy = true;
    gateway_ = net_.add_node(base);
  }

  sim::Simulator sim_;
  net::Network net_;
  net::NodeId gateway_;
};

TEST_F(GridInfraFixture, SubmitRunsJobAndReportsPhases) {
  GridInfrastructure infra(net_, gateway_, {{"ws", 1e9}});
  JobResult result;
  infra.submit(2e9, 1000000, 1000, [&](JobResult r) { result = r; });
  sim_.run();
  EXPECT_TRUE(result.ok);
  EXPECT_NEAR(result.compute_s, 2.0, 1e-9);
  EXPECT_GT(result.transfer_in_s, 0.05);  // 1 MB over 100 Mbps ~ 80 ms
  EXPECT_GT(result.total_s,
            result.compute_s + result.transfer_in_s - 1e-9);
}

TEST_F(GridInfraFixture, SchedulerPrefersFasterMachine) {
  GridInfrastructure infra(net_, gateway_,
                           {{"slow", 1e8}, {"fast", 1e10}});
  JobResult result;
  infra.submit(1e9, 100, 100, [&](JobResult r) { result = r; });
  sim_.run();
  EXPECT_TRUE(result.ok);
  EXPECT_NEAR(result.compute_s, 0.1, 1e-9);  // ran on the fast machine
  EXPECT_DOUBLE_EQ(infra.peak_flops_per_s(), 1e10);
}

TEST_F(GridInfraFixture, QueueingDelaysSecondJob) {
  GridInfrastructure infra(net_, gateway_, {{"only", 1e9}});
  JobResult first;
  JobResult second;
  infra.submit(5e9, 100, 100, [&](JobResult r) { first = r; });
  infra.submit(5e9, 100, 100, [&](JobResult r) { second = r; });
  sim_.run();
  EXPECT_TRUE(first.ok);
  EXPECT_TRUE(second.ok);
  EXPECT_GT(second.queue_s, 1.0) << "second job waits behind the first";
}

TEST_F(GridInfraFixture, TwoMachinesRunJobsConcurrently) {
  GridInfrastructure infra(net_, gateway_, {{"a", 1e9}, {"b", 1e9}});
  JobResult first;
  JobResult second;
  infra.submit(5e9, 100, 100, [&](JobResult r) { first = r; });
  infra.submit(5e9, 100, 100, [&](JobResult r) { second = r; });
  sim_.run();
  EXPECT_NEAR(second.queue_s, 0.0, 1e-9);
}

TEST_F(GridInfraFixture, EstimateReflectsQueue) {
  GridInfrastructure infra(net_, gateway_, {{"only", 1e9}});
  EXPECT_NEAR(infra.estimate_compute_wait_s(1e9), 1.0, 1e-9);
  infra.submit(10e9, 100, 100, [](JobResult) {});
  // Run just past the input transfer so the machine is marked busy.
  sim_.run_until(sim::SimTime::seconds(1.0));
  EXPECT_GT(infra.estimate_compute_wait_s(1e9), 5.0);
  sim_.run();
}

TEST_F(GridInfraFixture, NoMachinesFailsGracefully) {
  GridInfrastructure infra(net_, gateway_, {});
  JobResult result;
  result.ok = true;
  infra.submit(1e9, 100, 100, [&](JobResult r) { result = r; });
  sim_.run();
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace pgrid::grid
