// Seeded soak for the multi-query sharing layer under sustained load:
// hundreds of overlapping continuous queries pushed through chaos while a
// composition workload runs sub-plan dedup alongside.  After the run
// drains, the checks are structural, not statistical —
//
//  - every query completed exactly once (answered or shed, never both,
//    never twice);
//  - the cost ledger conserved through per-subscriber reattribution, with
//    no open spans and an exactly-empty kernel;
//  - nothing leaked: no live shared-tree groups, no admission queue
//    entries, no in-flight dedup waiters, no force-packet holds on the
//    flow tier;
//  - sharing actually happened (epoch deliveries exceed collections run).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "compose/manager.hpp"
#include "compose/provider.hpp"
#include "core/runtime.hpp"
#include "sim/chaos.hpp"
#include "sim/invariants.hpp"

namespace pgrid {
namespace {

struct SoakSetup {
  bool sharing = true;
  bool flow = false;
  std::uint64_t seed = 1;
  std::size_t keys = 8;             ///< distinct canonical groups
  std::size_t subscribers = 25;     ///< queries per group
  std::size_t compose_waves = 6;    ///< dedup'd composite executions
};

struct SoakResult {
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t failed = 0;
  std::size_t multi_completions = 0;  ///< queries completing != once
  std::size_t composites_ok = 0;
  std::uint64_t dedup_hits = 0;
  std::vector<std::string> failure_samples;  ///< first few failure reasons
};

/// The query for (key k, subscriber j): four WHERE shapes x two cadences
/// give eight canonical groups; the aggregate function cycles through all
/// five finalizers, which deliberately does NOT split a group.
std::string soak_query(std::size_t key, std::size_t subscriber) {
  static const char* kFns[] = {"AVG", "MAX", "MIN", "SUM", "COUNT"};
  static const char* kWheres[] = {"", " WHERE temp > 0", " WHERE temp > 10",
                                  " WHERE temp > 15"};
  const int epoch = 2 + static_cast<int>(key % 2);
  return std::string("SELECT ") + kFns[subscriber % 5] +
         "(temp) FROM sensors" + kWheres[key % 4] + " EPOCH DURATION " +
         std::to_string(epoch);
}

SoakResult run_soak(const SoakSetup& setup, core::PervasiveGridRuntime** out,
                    std::unique_ptr<core::PervasiveGridRuntime>& holder,
                    std::unique_ptr<compose::CompositionManager>& manager) {
  core::RuntimeConfig config;
  config.seed = setup.seed;
  config.sensors.sensor_count = 25;
  config.sensors.width_m = 61.0;
  config.sensors.height_m = 61.0;
  config.sensors.base_pos = {-5.0, -5.0, 0.0};
  config.advertise_sensor_services = false;
  config.continuous_epochs = 4;
  config.reliability.enabled = true;
  config.flow.enabled = setup.flow;
  config.sharing.enabled = setup.sharing;
  config.sharing.max_active = 16;
  config.sharing.max_queue = 256;
  holder = std::make_unique<core::PervasiveGridRuntime>(config);
  auto& runtime = *holder;
  *out = &runtime;

  sim::ChaosEngine engine(runtime.network(), setup.seed);
  sim::ChaosConfig chaos;
  chaos.horizon = sim::SimTime::seconds(40.0);
  chaos.fault_count = 12;
  chaos.mix = sim::ChaosMix::lossy_mesh();
  engine.arm(chaos);

  SoakResult result;
  result.total = setup.keys * setup.subscribers;
  std::vector<int> completions(result.total, 0);
  auto& sim = runtime.simulator();

  // Staggered arrivals: each group's subscribers trickle in across the
  // chaos horizon, so joins land in every phase (fault active, healing,
  // healed) and groups repeatedly grow, drain, and re-form.
  for (std::size_t k = 0; k < setup.keys; ++k) {
    for (std::size_t j = 0; j < setup.subscribers; ++j) {
      const std::size_t slot = k * setup.subscribers + j;
      const double at_s = 1.0 + 1.4 * static_cast<double>(j) +
                          0.1 * static_cast<double>(k);
      sim.schedule(sim::SimTime::seconds(at_s), [&runtime, &completions,
                                                 &result, slot, k, j] {
        runtime.submit(soak_query(k, j),
                       [&completions, &result, slot, k, j](
                           core::QueryOutcome out) {
                         ++completions[slot];
                         if (out.shed) {
                           ++result.shed;
                         } else if (out.ok) {
                           ++result.ok;
                         } else {
                           ++result.failed;
                           if (result.failure_samples.size() < 8) {
                             result.failure_samples.push_back(
                                 soak_query(k, j) + " -> " +
                                 (out.error.empty() ? "epochs all failed"
                                                    : out.error));
                           }
                         }
                       });
      });
    }
  }

  // Composition load riding the same deployment: identical sub-plans fan
  // out in waves with dedup on, so resolved plans are reused within each
  // wave and across waves inside the validity window.
  auto add_provider = [&](const std::string& name, double x) {
    net::NodeConfig nc;
    nc.pos = {x, -10.0, 0.0};
    nc.radio = net::LinkClass::wifi();
    nc.unlimited_energy = true;
    const auto node = runtime.network().add_node(nc);
    discovery::ServiceDescription service;
    service.name = name;
    service.service_class = "ComputeService";
    auto provider = std::make_unique<compose::ServiceProviderAgent>(
        name, node, service, 1e8);
    auto* raw = provider.get();
    const auto id = runtime.agents().register_agent(std::move(provider));
    raw->service().provider = id;
    discovery::advertise(runtime.agents(), id, runtime.broker().id(),
                         raw->service());
  };
  add_provider("compute-a", 10.0);
  add_provider("compute-b", 20.0);
  const auto client = runtime.agents().register_agent(
      std::make_unique<agent::LambdaAgent>(
          "load-client", runtime.sensors().base_station(),
          [](agent::LambdaAgent&, const agent::Envelope&) {}));
  manager = std::make_unique<compose::CompositionManager>(
      runtime.agents(), client, runtime.broker().id());
  for (std::size_t wave = 0; wave < setup.compose_waves; ++wave) {
    sim.schedule(sim::SimTime::seconds(4.0 + 6.0 * static_cast<double>(wave)),
                 [&manager, &result] {
                   compose::TaskGraph graph;
                   for (std::size_t t = 0; t < 3; ++t) {
                     compose::TaskSpec spec;
                     spec.name = "analyze-" + std::to_string(t);
                     spec.service_class = "ComputeService";
                     graph.add_task(spec);
                   }
                   compose::CompositionOptions options;
                   options.dedup_discoveries = true;
                   options.dedup_validity = sim::SimTime::seconds(5.0);
                   manager->execute(graph, options,
                                    [&result](compose::CompositionReport r) {
                                      if (r.success) ++result.composites_ok;
                                      result.dedup_hits += r.dedup_hits;
                                    });
                 });
  }

  sim.run();

  for (const int count : completions) {
    if (count != 1) ++result.multi_completions;
  }
  return result;
}

void expect_drained_clean(core::PervasiveGridRuntime& runtime,
                          compose::CompositionManager& manager) {
  EXPECT_EQ(sim::check_ledger_conservation(runtime.telemetry()),
            std::nullopt);
  EXPECT_EQ(sim::check_no_open_spans(runtime.telemetry()), std::nullopt);
  EXPECT_EQ(sim::check_kernel_pending_exact(runtime.simulator()),
            std::nullopt);
  EXPECT_EQ(manager.dedup_in_flight(), 0u) << "leaked dedup waiters";
  if (auto* sharing = runtime.sharing()) {
    EXPECT_EQ(sharing->registry().active_groups(), 0u)
        << "leaked shared-tree groups";
    EXPECT_EQ(sharing->active(), 0u);
    EXPECT_EQ(sharing->queue_depth(), 0u) << "leaked admission queue entries";
  }
  if (auto* flow = runtime.flow_model()) {
    EXPECT_EQ(flow->forced_link_count(), 0u) << "leaked force-packet holds";
  }
}

TEST(LoadSoak, SharedSustainedLoadDrainsClean) {
  SoakSetup setup;
  setup.sharing = true;
  setup.seed = 3;
  core::PervasiveGridRuntime* runtime = nullptr;
  std::unique_ptr<core::PervasiveGridRuntime> holder;
  std::unique_ptr<compose::CompositionManager> manager;
  const auto result = run_soak(setup, &runtime, holder, manager);

  EXPECT_EQ(result.multi_completions, 0u) << "exactly-once violated";
  EXPECT_EQ(result.ok + result.shed + result.failed, result.total);
  // Reliability + sharing keep the answer rate high through lossy chaos;
  // anything shed was an explicit admission decision, not a silent drop.
  EXPECT_GE(result.ok, (result.total * 3) / 4);
  EXPECT_EQ(result.composites_ok, setup.compose_waves);
  EXPECT_GE(result.dedup_hits, 2u * setup.compose_waves)
      << "each 3-task wave should resolve its sub-plan once";

  auto& sharing = *runtime->sharing();
  EXPECT_GE(sharing.stats().shared_queries, result.ok);
  // The sharing invariant under load: far more per-subscriber epochs were
  // delivered than shared collections run.
  const auto& tree = sharing.registry().stats();
  EXPECT_GT(tree.fanouts, tree.collections);
  EXPECT_EQ(tree.groups_created, tree.groups_torn_down);

  expect_drained_clean(*runtime, *manager);
}

TEST(LoadSoak, SharedLoadWithFlowTierReleasesEveryHold) {
  SoakSetup setup;
  setup.sharing = true;
  setup.flow = true;
  setup.seed = 5;
  setup.subscribers = 12;  // flow variant: same shape, lighter sweep
  core::PervasiveGridRuntime* runtime = nullptr;
  std::unique_ptr<core::PervasiveGridRuntime> holder;
  std::unique_ptr<compose::CompositionManager> manager;
  const auto result = run_soak(setup, &runtime, holder, manager);

  EXPECT_EQ(result.multi_completions, 0u);
  EXPECT_EQ(result.ok + result.shed + result.failed, result.total);
  std::string failures;
  for (const auto& f : result.failure_samples) failures += "\n  " + f;
  EXPECT_GE(result.ok, (result.total * 3) / 4)
      << "ok " << result.ok << " shed " << result.shed << " failed "
      << result.failed << failures;
  ASSERT_NE(runtime->flow_model(), nullptr);
  expect_drained_clean(*runtime, *manager);
}

TEST(LoadSoak, UnsharedControlMixDrainsClean) {
  // Control: the same harness with the sharing layer disabled.  Slimmer
  // (every query runs its own collection), but the exactly-once and
  // conservation guarantees must hold identically.
  SoakSetup setup;
  setup.sharing = false;
  setup.seed = 9;
  setup.keys = 4;
  setup.subscribers = 3;
  setup.compose_waves = 2;
  core::PervasiveGridRuntime* runtime = nullptr;
  std::unique_ptr<core::PervasiveGridRuntime> holder;
  std::unique_ptr<compose::CompositionManager> manager;
  const auto result = run_soak(setup, &runtime, holder, manager);

  EXPECT_EQ(result.multi_completions, 0u);
  EXPECT_EQ(result.shed, 0u) << "no admission layer, nothing may shed";
  EXPECT_EQ(result.ok + result.failed, result.total);
  EXPECT_GE(result.ok, (result.total * 3) / 4);
  EXPECT_EQ(runtime->sharing(), nullptr);
  expect_drained_clean(*runtime, *manager);
}

}  // namespace
}  // namespace pgrid
