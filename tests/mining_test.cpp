// Unit + property tests for the stream-mining substrate: stream generation,
// boolean decision trees, Walsh-Hadamard spectra (with exact algebraic
// checks), dominant-coefficient selection, and the full ensemble pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "mining/ensemble.hpp"

namespace pgrid::mining {
namespace {

// ---------------------------------------------------------------------------
// Dataset / stream generator
// ---------------------------------------------------------------------------

TEST(Stream, WindowShapeAndDeterminism) {
  StreamGenerator a(8, common::Rng(5));
  StreamGenerator b(8, common::Rng(5));
  const auto wa = a.next_window(100);
  const auto wb = b.next_window(100);
  ASSERT_EQ(wa.size(), 100u);
  for (std::size_t i = 0; i < wa.size(); ++i) {
    EXPECT_EQ(wa[i].features, wb[i].features);
    EXPECT_EQ(wa[i].label, wb[i].label);
    EXPECT_EQ(wa[i].features.size(), 8u);
  }
}

TEST(Stream, LabelsMatchConceptWithoutNoise) {
  StreamGenerator gen(8, common::Rng(7), 0.0);
  for (const auto& instance : gen.next_window(200)) {
    EXPECT_EQ(instance.label, gen.truth(instance.features));
  }
}

TEST(Stream, NoiseFlipsRoughlyTheConfiguredFraction) {
  StreamGenerator gen(8, common::Rng(7), 0.2);
  std::size_t flipped = 0;
  const auto window = gen.next_window(5000);
  for (const auto& instance : window) {
    if (instance.label != gen.truth(instance.features)) ++flipped;
  }
  EXPECT_NEAR(double(flipped) / double(window.size()), 0.2, 0.03);
}

TEST(Stream, DriftChangesTheConcept) {
  StreamGenerator gen(10, common::Rng(11));
  const auto before = gen.next_window(500);
  gen.drift();
  std::size_t disagreements = 0;
  for (const auto& instance : before) {
    if (gen.truth(instance.features) != instance.label) ++disagreements;
  }
  EXPECT_GT(disagreements, 0u) << "new concept must relabel something";
}

TEST(Stream, AccuracyHelper) {
  Window window;
  window.push_back({{true}, true});
  window.push_back({{false}, false});
  window.push_back({{true}, false});
  const double acc =
      accuracy([](const std::vector<bool>& x) { return x[0]; }, window);
  EXPECT_NEAR(acc, 2.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Decision tree
// ---------------------------------------------------------------------------

TEST(BooleanTree, LearnsConjunctionExactly) {
  // f = x0 AND x2 over 4 attributes, exhaustive training set.
  Window window;
  for (int x = 0; x < 16; ++x) {
    Instance instance;
    for (int d = 0; d < 4; ++d) instance.features.push_back((x >> d) & 1);
    instance.label = instance.features[0] && instance.features[2];
    window.push_back(instance);
  }
  BooleanDecisionTree tree;
  tree.train(window, 4);
  EXPECT_DOUBLE_EQ(tree.accuracy_on(window), 1.0);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(BooleanTree, LearnsXorWithTwoLevels) {
  Window window;
  for (int x = 0; x < 4; ++x) {
    Instance instance;
    instance.features = {bool(x & 1), bool(x & 2)};
    instance.label = instance.features[0] != instance.features[1];
    // Replicate so splits are well supported.
    for (int rep = 0; rep < 8; ++rep) window.push_back(instance);
  }
  BooleanDecisionTree tree;
  tree.train(window, 2);
  EXPECT_DOUBLE_EQ(tree.accuracy_on(window), 1.0);
}

TEST(BooleanTree, DepthCapLimitsTree) {
  StreamGenerator gen(10, common::Rng(3));
  const auto window = gen.next_window(500);
  BooleanDecisionTree deep;
  deep.train(window, 10);
  BooleanDecisionTree shallow;
  shallow.train(window, 10, 2);
  EXPECT_LE(shallow.depth(), 3u);  // root + 2 levels
  EXPECT_LE(shallow.node_count(), deep.node_count());
}

TEST(BooleanTree, UntrainedPredictsFalse) {
  BooleanDecisionTree tree;
  EXPECT_FALSE(tree.trained());
  EXPECT_FALSE(tree.predict({true, true}));
}

TEST(BooleanTree, NodeAndLeafCountsConsistent) {
  StreamGenerator gen(8, common::Rng(9));
  BooleanDecisionTree tree;
  tree.train(gen.next_window(300), 8);
  // A binary tree with L leaves has exactly L-1 internal nodes.
  EXPECT_EQ(tree.node_count(), 2 * tree.leaf_count() - 1);
  EXPECT_GT(tree.wire_bytes(), 0u);
}

TEST(BooleanTree, GeneralizesOnCleanConcept) {
  StreamGenerator gen(10, common::Rng(21), 0.0);
  BooleanDecisionTree tree;
  tree.train(gen.next_window(2000), 10);
  const auto test_window = gen.next_window(1000);
  EXPECT_GT(tree.accuracy_on(test_window), 0.95);
}

// ---------------------------------------------------------------------------
// Fourier spectra (exact algebra)
// ---------------------------------------------------------------------------

TEST(Fourier, ConstantFunctionHasOnlyZeroCoefficient) {
  const auto spectrum =
      full_spectrum([](const std::vector<bool>&) { return 1; }, 6);
  ASSERT_EQ(spectrum.size(), 64u);
  EXPECT_NEAR(spectrum[0], 1.0, 1e-12);
  for (std::size_t z = 1; z < spectrum.size(); ++z) {
    EXPECT_NEAR(spectrum[z], 0.0, 1e-12);
  }
}

TEST(Fourier, ParityIsASingleCoefficient) {
  // f(x) = psi_z(x) for z = 0b1011 has w_z = 1 and all others 0.
  const std::uint32_t z = 0b1011;
  auto parity = [z](const std::vector<bool>& x) {
    int p = 0;
    for (std::size_t d = 0; d < x.size(); ++d) {
      if ((z >> d) & 1u) p ^= x[d] ? 1 : 0;
    }
    return p ? -1 : 1;
  };
  const auto spectrum = full_spectrum(parity, 5);
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    EXPECT_NEAR(spectrum[i], i == z ? 1.0 : 0.0, 1e-12) << i;
  }
}

TEST(Fourier, ParsevalHoldsForSignFunctions) {
  // Any ±1 function has total spectral energy exactly 1.
  StreamGenerator gen(8, common::Rng(31));
  BooleanDecisionTree tree;
  tree.train(gen.next_window(400), 8);
  const auto spectrum = full_spectrum(
      as_sign([&](const std::vector<bool>& x) { return tree.predict(x); }),
      8);
  double energy = 0.0;
  for (double w : spectrum) energy += w * w;
  EXPECT_NEAR(energy, 1.0, 1e-9);
}

TEST(Fourier, FullSpectrumReconstructsExactly) {
  StreamGenerator gen(6, common::Rng(17));
  BooleanDecisionTree tree;
  tree.train(gen.next_window(200), 6);
  const auto spectrum = full_spectrum(
      as_sign([&](const std::vector<bool>& x) { return tree.predict(x); }),
      6);
  std::vector<Coefficient> everything;
  for (std::size_t z = 0; z < spectrum.size(); ++z) {
    everything.push_back({static_cast<std::uint32_t>(z), spectrum[z]});
  }
  SpectrumClassifier reconstructed(everything);
  std::vector<bool> features(6);
  for (std::size_t x = 0; x < 64; ++x) {
    for (std::size_t d = 0; d < 6; ++d) features[d] = (x >> d) & 1u;
    EXPECT_EQ(reconstructed.predict(features), tree.predict(features)) << x;
  }
}

TEST(Fourier, DominantKeepsLargestMagnitudes) {
  std::vector<double> spectrum = {0.1, -0.9, 0.3, 0.0, 0.5, -0.2, 0.0, 0.05};
  const auto top = dominant(spectrum, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].index, 1u);
  EXPECT_EQ(top[1].index, 4u);
  EXPECT_EQ(top[2].index, 2u);
  EXPECT_NEAR(captured_energy(top), 0.81 + 0.25 + 0.09, 1e-12);
}

TEST(Fourier, OrderOfCountsBits) {
  EXPECT_EQ(order_of(0), 0u);
  EXPECT_EQ(order_of(0b1), 1u);
  EXPECT_EQ(order_of(0b1011), 3u);
}

TEST(Fourier, TreeEnergyConcentratesInFewCoefficients) {
  // The pipeline's premise: decision trees are spectrally sparse.
  StreamGenerator gen(10, common::Rng(41));
  BooleanDecisionTree tree;
  tree.train(gen.next_window(1000), 10, 4);
  const auto spectrum = full_spectrum(
      as_sign([&](const std::vector<bool>& x) { return tree.predict(x); }),
      10);
  const auto top = dominant(spectrum, 32);
  EXPECT_GT(captured_energy(top), 0.9)
      << "32 of 1024 coefficients must capture >90% of a depth-4 tree";
}

TEST(Fourier, AverageSpectraIsLinear) {
  std::vector<std::vector<double>> spectra = {{1.0, 0.0, -1.0},
                                              {0.0, 2.0, 1.0}};
  const auto avg = average_spectra(spectra);
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_DOUBLE_EQ(avg[0], 0.5);
  EXPECT_DOUBLE_EQ(avg[1], 1.0);
  EXPECT_DOUBLE_EQ(avg[2], 0.0);
}

// ---------------------------------------------------------------------------
// The pipeline
// ---------------------------------------------------------------------------

TEST(Ensemble, PipelineBeatsNoiseAndShipsFewBytes) {
  StreamGenerator gen(10, common::Rng(77), 0.15);  // noisy stream
  std::vector<Window> windows;
  for (int w = 0; w < 5; ++w) windows.push_back(gen.next_window(400));

  EnsembleConfig config;
  config.dimensions = 10;
  config.tree_max_depth = 5;
  config.dominant_coefficients = 48;
  const auto result = mine_stream(windows, config);
  ASSERT_EQ(result.trees.size(), 5u);
  EXPECT_GT(result.captured_energy, 0.5);

  // Evaluate on a clean window from the same concept.
  StreamGenerator clean(10, common::Rng(77), 0.0);
  // Re-derive the same concept by copying the generator's rng seed is not
  // possible; instead evaluate against ground truth of `gen` itself.
  const auto test_window = [&] {
    Window w = gen.next_window(1500);
    for (auto& instance : w) instance.label = gen.truth(instance.features);
    return w;
  }();

  const double combined = accuracy(
      [&](const std::vector<bool>& x) { return result.predict(x); },
      test_window);
  const double single = result.trees.front().accuracy_on(test_window);
  EXPECT_GT(combined, 0.8);
  EXPECT_GE(combined + 0.02, single)
      << "combined classifier must be competitive with a single tree";

  // The mobile motivation: dominant coefficients are far cheaper to ship
  // than the raw windows.
  EXPECT_LT(result.spectrum_bytes, result.raw_data_bytes / 2);
}

TEST(Ensemble, MajorityVoteAvailableAsBaseline) {
  StreamGenerator gen(8, common::Rng(13), 0.1);
  std::vector<Window> windows;
  for (int w = 0; w < 3; ++w) windows.push_back(gen.next_window(300));
  EnsembleConfig config;
  config.dimensions = 8;
  const auto result = mine_stream(windows, config);
  Window test_window = gen.next_window(500);
  for (auto& instance : test_window) {
    instance.label = gen.truth(instance.features);
  }
  const double vote = accuracy(
      [&](const std::vector<bool>& x) { return result.majority(x); },
      test_window);
  EXPECT_GT(vote, 0.75);
}

TEST(Ensemble, EmptyInputIsHarmless) {
  EnsembleConfig config;
  config.dimensions = 4;
  const auto result = mine_stream({}, config);
  EXPECT_TRUE(result.trees.empty());
  EXPECT_EQ(result.spectrum_bytes, 0u);
  EXPECT_FALSE(result.predict({true, false, true, false}));
}

}  // namespace
}  // namespace pgrid::mining
