// Tests for mobility: waypoint movement, topology invalidation, and the
// interaction of moving nodes with routing and discovery.
#include <gtest/gtest.h>

#include <memory>

#include "agent/platform.hpp"
#include "discovery/broker.hpp"
#include "net/mobility.hpp"
#include "net/routing.hpp"

namespace pgrid::net {
namespace {

class MobilityFixture : public ::testing::Test {
 protected:
  MobilityFixture() : net_(sim_, common::Rng(3)) {}

  NodeId add_node(double x, double y,
                  LinkClass radio = LinkClass::sensor_radio()) {
    NodeConfig c;
    c.pos = {x, y, 0};
    c.radio = radio;
    c.unlimited_energy = true;
    return net_.add_node(c);
  }

  sim::Simulator sim_;
  Network net_;
};

TEST_F(MobilityFixture, MoveNodeBumpsTopologyVersion) {
  const auto a = add_node(0, 0);
  const auto version = net_.topology_version();
  net_.move_node(a, {10, 10, 0});
  EXPECT_GT(net_.topology_version(), version);
  EXPECT_EQ(net_.node(a).pos.x, 10.0);
  // Moving to the same place is a no-op.
  const auto version2 = net_.topology_version();
  net_.move_node(a, {10, 10, 0});
  EXPECT_EQ(net_.topology_version(), version2);
}

TEST_F(MobilityFixture, MovementChangesConnectivity) {
  const auto a = add_node(0, 0);
  const auto b = add_node(100, 0);  // out of 25 m sensor range
  EXPECT_FALSE(net_.connected(a, b));
  net_.move_node(b, {20, 0, 0});
  EXPECT_TRUE(net_.connected(a, b));
}

TEST_F(MobilityFixture, WaypointWalkerStaysInBoundsAndCompletesLegs) {
  const auto walker = add_node(50, 50);
  WaypointConfig config;
  config.width_m = 100;
  config.height_m = 100;
  config.min_speed_m_s = 5.0;
  config.max_speed_m_s = 10.0;
  config.min_pause = sim::SimTime::seconds(0.5);
  config.max_pause = sim::SimTime::seconds(1.0);
  config.horizon = sim::SimTime::seconds(300.0);
  WaypointMobility mobility(net_, {walker}, config, common::Rng(17));
  mobility.start();

  // Check bounds at every simulated second.
  bool in_bounds = true;
  for (int t = 1; t <= 300; ++t) {
    sim_.run_until(sim::SimTime::seconds(double(t)));
    const auto& pos = net_.node(walker).pos;
    in_bounds = in_bounds && pos.x >= -1e-9 && pos.x <= 100.0 + 1e-9 &&
                pos.y >= -1e-9 && pos.y <= 100.0 + 1e-9;
  }
  sim_.clear();
  EXPECT_TRUE(in_bounds);
  EXPECT_GT(mobility.legs_completed(), 3u)
      << "at 5-10 m/s in a 100 m box, 300 s must complete several legs";
}

TEST_F(MobilityFixture, WaypointIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim;
    Network net(sim, common::Rng(3));
    NodeConfig c;
    c.pos = {50, 50, 0};
    c.unlimited_energy = true;
    const auto walker = net.add_node(c);
    WaypointConfig config;
    config.horizon = sim::SimTime::seconds(120.0);
    WaypointMobility mobility(net, {walker}, config, common::Rng(seed));
    mobility.start();
    sim.run_until(sim::SimTime::seconds(120.0));
    sim.clear();
    const auto& pos = net.node(walker).pos;
    return std::make_pair(pos.x, pos.y);
  };
  EXPECT_EQ(run_once(9), run_once(9));
  EXPECT_NE(run_once(9), run_once(10));
}

TEST_F(MobilityFixture, RoutesFollowTheWalker) {
  // Chain a - b; c walks from far away to between them, offering a shorter
  // bridge is not needed; instead: route to the walker exists only when in
  // range.
  const auto base = add_node(0, 0);
  const auto walker = add_node(200, 0);
  EXPECT_TRUE(shortest_path(net_, base, walker).empty());
  net_.move_node(walker, {15, 0, 0});
  const auto route = shortest_path(net_, base, walker);
  ASSERT_EQ(route.size(), 2u);
}

TEST_F(MobilityFixture, MovingProviderDiscoverableOnlyInRange) {
  // A mobile service (the CDC truck) drives toward the broker; discovery
  // fails while out of range and succeeds after it arrives.
  agent::AgentPlatform platform(net_);
  auto ontology = discovery::make_standard_ontology();
  const auto hub = add_node(0, 0, LinkClass::wifi());
  const auto truck_node = add_node(500, 0, LinkClass::wifi());
  auto broker = std::make_unique<discovery::BrokerAgent>("broker", hub,
                                                         ontology);
  auto* broker_raw = broker.get();
  platform.register_agent(std::move(broker));
  const auto client = platform.register_agent(
      std::make_unique<agent::LambdaAgent>(
          "client", hub, [](agent::LambdaAgent&, const agent::Envelope&) {}));

  // The truck pre-registered its service by phone (directly in registry).
  discovery::ServiceDescription service;
  service.name = "mobile-lab";
  service.service_class = "PathogenSensor";
  service.node = truck_node;
  const auto truck_agent = platform.register_agent(
      std::make_unique<agent::LambdaAgent>(
          "truck", truck_node,
          [](agent::LambdaAgent&, const agent::Envelope&) {}));
  service.provider = truck_agent;
  broker_raw->registry().register_service(service);

  // Invoking the provider fails while the truck is 500 m away...
  agent::Envelope ping;
  ping.sender = client;
  ping.receiver = truck_agent;
  bool reachable = true;
  platform.send(ping, [&](bool ok) { reachable = ok; });
  sim_.run();
  EXPECT_FALSE(reachable);

  // ...then the truck parks next door.
  net_.move_node(truck_node, {30, 0, 0});
  platform.send(ping, [&](bool ok) { reachable = ok; });
  sim_.run();
  EXPECT_TRUE(reachable);
}

}  // namespace
}  // namespace pgrid::net
