// Tests for multi-storey buildings: floor deployment, floor predicates,
// and the 3-D temperature-distribution query ("a 3D partial differential
// equation needs to be set up, grid points populated by data from the
// sensors...").
#include <gtest/gtest.h>

#include <memory>

#include "core/runtime.hpp"

namespace pgrid {
namespace {

core::RuntimeConfig tower_config() {
  core::RuntimeConfig config;
  config.sensors.sensor_count = 25;  // 5x5 per floor
  config.sensors.width_m = 60.0;
  config.sensors.height_m = 60.0;
  config.sensors.floors = 3;
  config.sensors.floor_height_m = 4.0;
  config.sensors.base_pos = {-5, -5, 0};
  config.sensors.noise_std = 0.0;
  config.advertise_sensor_services = false;
  config.pde_resolution = 11;
  config.pde_depth_resolution = 5;
  return config;
}

class TowerFixture : public ::testing::Test {
 protected:
  TowerFixture() : runtime_(tower_config()) {
    // Fire on the middle floor.
    sensornet::FireSource fire;
    fire.pos = {30.0, 30.0, 4.0};
    fire.start = sim::SimTime::seconds(-3600.0);
    fire.spread_m_per_s = 0.0;
    fire.initial_radius_m = 5.0;
    runtime_.field().ignite(fire);
  }
  core::PervasiveGridRuntime runtime_;
};

TEST_F(TowerFixture, DeploymentStacksFloors) {
  auto& sensors = runtime_.sensors();
  EXPECT_EQ(sensors.sensors().size(), 75u);  // 25 per floor x 3
  std::size_t per_floor[3] = {0, 0, 0};
  for (auto id : sensors.sensors()) {
    const auto floor = sensors.floor_of(id);
    ASSERT_LT(floor, 3u);
    ++per_floor[floor];
    EXPECT_NEAR(runtime_.network().node(id).pos.z, 4.0 * double(floor),
                1e-9);
  }
  EXPECT_EQ(per_floor[0], 25u);
  EXPECT_EQ(per_floor[1], 25u);
  EXPECT_EQ(per_floor[2], 25u);
  EXPECT_DOUBLE_EQ(sensors.building_depth_m(), 12.0);
}

TEST_F(TowerFixture, FloorsAreRadioConnectedVertically) {
  // 4 m floor spacing is well inside the 25 m sensor radio range, so the
  // tower forms one connected network rooted at the ground-floor base.
  auto& sensors = runtime_.sensors();
  const auto& tree = sensors.tree();
  for (auto id : sensors.sensors()) {
    EXPECT_TRUE(tree.contains(id)) << "sensor " << id;
  }
}

TEST_F(TowerFixture, FloorPredicateScopesAggregates) {
  const auto burning = runtime_.submit_and_run(
      "SELECT MAX(temp) FROM sensors WHERE floor = 1");
  ASSERT_TRUE(burning.ok) << burning.error;
  runtime_.reset_energy();
  const auto quiet = runtime_.submit_and_run(
      "SELECT MAX(temp) FROM sensors WHERE floor = 0");
  ASSERT_TRUE(quiet.ok) << quiet.error;
  EXPECT_GT(burning.actual.value, quiet.actual.value + 50.0)
      << "the fire is on floor 1";
  runtime_.reset_energy();
  const auto count = runtime_.submit_and_run(
      "SELECT COUNT(temp) FROM sensors WHERE floor = 2");
  ASSERT_TRUE(count.ok);
  EXPECT_DOUBLE_EQ(count.actual.value, 25.0);
}

TEST_F(TowerFixture, ThreeDimensionalDistributionLocatesTheFloor) {
  const auto outcome = runtime_.submit_and_run(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors",
      partition::SolutionModel::kGridOffload);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_TRUE(outcome.actual.distribution.has_value());
  const auto& dist = *outcome.actual.distribution;
  EXPECT_EQ(dist.nz, 5u) << "3-D solve when the building has floors";
  EXPECT_DOUBLE_EQ(dist.depth_m, 12.0);
  // Hotter at the fire's floor than directly above/below it at the same
  // (x, y) — the vertical dimension carries information.
  const double at_fire = dist.value_at({30, 30, 4});
  const double below = dist.value_at({30, 30, 0});
  const double above = dist.value_at({30, 30, 11});
  EXPECT_GT(at_fire, below + 20.0);
  EXPECT_GT(at_fire, above + 20.0);
}

TEST_F(TowerFixture, SingleFloorStays2D) {
  core::RuntimeConfig flat = tower_config();
  flat.sensors.floors = 1;
  core::PervasiveGridRuntime ground(flat);
  const auto outcome = ground.submit_and_run(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors",
      partition::SolutionModel::kGridOffload);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.actual.distribution->nz, 1u);
}

TEST_F(TowerFixture, CostAccountingCoversAllFloors) {
  const auto all = runtime_.submit_and_run("SELECT COUNT(temp) FROM sensors");
  ASSERT_TRUE(all.ok);
  EXPECT_DOUBLE_EQ(all.actual.value, 75.0);
  EXPECT_GT(all.actual.energy_j, 0.0);
}

}  // namespace
}  // namespace pgrid
