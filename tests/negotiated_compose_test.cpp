// Tests for negotiated composition binding: discovery proposes candidates,
// a contract-net round among their providers picks the best performance
// commitment, and the winner executes the task.
#include <gtest/gtest.h>

#include <memory>

#include "agent/contract_net.hpp"
#include "agent/platform.hpp"
#include "compose/manager.hpp"
#include "compose/provider.hpp"
#include "discovery/broker.hpp"

namespace pgrid::compose {
namespace {

class NegotiatedFixture : public ::testing::Test {
 protected:
  NegotiatedFixture()
      : net_(sim_, common::Rng(23)),
        platform_(net_),
        ontology_(discovery::make_standard_ontology()) {
    hub_ = add_node(0);
    broker_id_ = platform_.register_agent(
        std::make_unique<discovery::BrokerAgent>("broker", hub_, ontology_));
    client_id_ = platform_.register_agent(std::make_unique<agent::LambdaAgent>(
        "client", hub_, [](agent::LambdaAgent&, const agent::Envelope&) {}));
  }

  net::NodeId add_node(double x) {
    net::NodeConfig c;
    c.pos = {x, 0, 0};
    c.radio = net::LinkClass::wifi();
    c.unlimited_energy = true;
    return net_.add_node(c);
  }

  ServiceProviderAgent* add_provider(const std::string& name,
                                     const std::string& cls, double ops,
                                     double cost = 0.0) {
    discovery::ServiceDescription service;
    service.name = name;
    service.service_class = cls;
    service.cost = cost;
    auto provider = std::make_unique<ServiceProviderAgent>(
        name, add_node(30), service, ops);
    auto* raw = provider.get();
    const auto id = platform_.register_agent(std::move(provider));
    raw->service().provider = id;
    discovery::advertise(platform_, id, broker_id_, raw->service());
    sim_.run();
    return raw;
  }

  sim::Simulator sim_;
  net::Network net_;
  agent::AgentPlatform platform_;
  discovery::Ontology ontology_;
  net::NodeId hub_;
  agent::AgentId broker_id_;
  agent::AgentId client_id_;
};

TEST_F(NegotiatedFixture, ProviderAnswersCfpWithCommitment) {
  auto* provider = add_provider("solver", "PdeSolver", 2e8, 1.5);
  agent::NegotiationResult result;
  agent::negotiate(platform_, client_id_, {provider->id()}, "ops=4e8",
                   sim::SimTime::seconds(10.0),
                   [&](agent::NegotiationResult r) { result = std::move(r); });
  sim_.run();
  ASSERT_EQ(result.proposals.size(), 1u);
  EXPECT_DOUBLE_EQ(result.proposals[0].cost, 1.5);
  EXPECT_NEAR(result.proposals[0].latency_s, 2.0, 1e-9);  // 4e8 / 2e8
  EXPECT_EQ(result.proposals[0].note, "solver");
}

TEST_F(NegotiatedFixture, NegotiatedBindingPicksFasterProvider) {
  auto* slow = add_provider("slow-solver", "PdeSolver", 1e6);
  auto* fast = add_provider("fast-solver", "PdeSolver", 1e9);

  TaskGraph graph;
  TaskSpec spec;
  spec.name = "solve";
  spec.service_class = "PdeSolver";
  spec.compute_ops = 5e6;
  graph.add_task(spec);

  CompositionOptions options;
  options.mode = CompositionMode::kNegotiated;
  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(graph, options,
                  [&](CompositionReport r) { report = r; });
  sim_.run();
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.negotiations, 1u);
  EXPECT_EQ(fast->invocations(), 1u) << "the faster commitment must win";
  EXPECT_EQ(slow->invocations(), 0u);
}

TEST_F(NegotiatedFixture, CostlyCommitmentLosesDespiteSpeed) {
  // Same speed, but one charges a fortune: policy is latency + cost.
  auto* pricey = add_provider("pricey", "ClusteringService", 1e9, 100.0);
  auto* fair = add_provider("fair", "ClusteringService", 1e9, 0.5);

  TaskGraph graph;
  TaskSpec spec;
  spec.name = "cluster";
  spec.service_class = "ClusteringService";
  graph.add_task(spec);

  CompositionOptions options;
  options.mode = CompositionMode::kNegotiated;
  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(graph, options,
                  [&](CompositionReport r) { report = r; });
  sim_.run();
  ASSERT_TRUE(report.success);
  EXPECT_EQ(fair->invocations(), 1u);
  EXPECT_EQ(pricey->invocations(), 0u);
}

TEST_F(NegotiatedFixture, SingleCandidateSkipsNegotiation) {
  auto* only = add_provider("only", "StorageService", 1e8);
  TaskGraph graph;
  TaskSpec spec;
  spec.name = "store";
  spec.service_class = "StorageService";
  graph.add_task(spec);
  CompositionOptions options;
  options.mode = CompositionMode::kNegotiated;
  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(graph, options,
                  [&](CompositionReport r) { report = r; });
  sim_.run();
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.negotiations, 0u) << "no auction with one bidder";
  EXPECT_EQ(only->invocations(), 1u);
}

TEST_F(NegotiatedFixture, DeadWinnerTriggersRebindThroughNegotiation) {
  auto* fast_but_dead = add_provider("fast-dead", "PdeSolver", 1e9);
  auto* slow_alive = add_provider("slow-alive", "PdeSolver", 1e7);
  // Dies after bidding would have happened... simplest: dead from the
  // start — a dead provider never answers the CFP either, so the round
  // awards the living one.
  fast_but_dead->set_dead(true);

  TaskGraph graph;
  TaskSpec spec;
  spec.name = "solve";
  spec.service_class = "PdeSolver";
  spec.compute_ops = 1e6;
  graph.add_task(spec);

  CompositionOptions options;
  options.mode = CompositionMode::kNegotiated;
  options.discover_timeout = sim::SimTime::seconds(2.0);
  options.invoke_timeout = sim::SimTime::seconds(5.0);
  CompositionManager manager(platform_, client_id_, broker_id_);
  CompositionReport report;
  manager.execute(graph, options,
                  [&](CompositionReport r) { report = r; });
  sim_.run();
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(slow_alive->invocations(), 1u);
}

}  // namespace
}  // namespace pgrid::compose
