// Unit tests for the network substrate: connectivity, energy accounting,
// transmission semantics, routing, flooding/gossip, churn.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "net/churn.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "sim/chaos.hpp"
#include "sim/invariants.hpp"
#include "sim/simulator.hpp"

namespace pgrid::net {
namespace {

NodeConfig sensor_at(double x, double y) {
  NodeConfig c;
  c.pos = {x, y, 0.0};
  c.kind = NodeKind::kSensor;
  c.radio = LinkClass::sensor_radio();  // 25 m range
  c.battery_j = 2.0;
  return c;
}

class NetFixture : public ::testing::Test {
 protected:
  sim::Simulator sim;
  common::Rng rng{12345};
  Network net{sim, common::Rng(999)};
};

TEST_F(NetFixture, EnergyModelFirstOrderNumbers) {
  RadioEnergyModel m;
  // 1000 bits over 10 m: 1000*(50nJ + 100pJ*100) = 50uJ + 10uJ = 60 uJ.
  EXPECT_NEAR(m.tx_energy(1000, 10.0), 60e-6, 1e-12);
  EXPECT_NEAR(m.rx_energy(1000), 50e-6, 1e-12);
}

TEST_F(NetFixture, EnergyMeterDiesAtCapacity) {
  EnergyMeter meter(1.0);
  EXPECT_TRUE(meter.consume(0.6));
  EXPECT_FALSE(meter.dead());
  EXPECT_FALSE(meter.consume(0.5));
  EXPECT_TRUE(meter.dead());
  EXPECT_DOUBLE_EQ(meter.remaining(), 0.0);
  meter.reset();
  EXPECT_FALSE(meter.dead());
  EXPECT_DOUBLE_EQ(meter.consumed(), 0.0);
}

TEST_F(NetFixture, UnlimitedMeterNeverDies) {
  auto meter = EnergyMeter::unlimited();
  EXPECT_TRUE(meter.consume(1e9));
  EXPECT_FALSE(meter.dead());
  EXPECT_GT(meter.consumed(), 0.0);
}

TEST_F(NetFixture, LinkClassTransferTime) {
  auto wired = LinkClass::wired();  // 100 Mbps, 2 ms latency
  // 1 MB => 8e6 bits / 1e8 bps = 80 ms + 2 ms latency.
  EXPECT_NEAR(wired.transfer_time(1000000).to_seconds(), 0.082, 1e-9);
}

TEST_F(NetFixture, WirelessConnectivityByRange) {
  const auto a = net.add_node(sensor_at(0, 0));
  const auto b = net.add_node(sensor_at(20, 0));    // within 25 m
  const auto c = net.add_node(sensor_at(100, 0));   // out of range
  EXPECT_TRUE(net.connected(a, b));
  EXPECT_FALSE(net.connected(a, c));
  EXPECT_FALSE(net.connected(a, a));
  EXPECT_EQ(net.neighbors(a), std::vector<NodeId>{b});
}

TEST_F(NetFixture, WiredLinkConnectsDistantNodes) {
  NodeConfig base = sensor_at(0, 0);
  base.unlimited_energy = true;
  const auto a = net.add_node(base);
  base.pos = {10000, 0, 0};
  const auto b = net.add_node(base);
  EXPECT_FALSE(net.connected(a, b));
  net.add_wired_link(a, b);
  EXPECT_TRUE(net.connected(a, b));
  auto link = net.link_between(a, b);
  ASSERT_TRUE(link.has_value());
  EXPECT_FALSE(link->wireless);
}

TEST_F(NetFixture, DownNodeIsUnreachable) {
  const auto a = net.add_node(sensor_at(0, 0));
  const auto b = net.add_node(sensor_at(10, 0));
  const auto version = net.topology_version();
  net.set_node_up(b, false);
  EXPECT_GT(net.topology_version(), version);
  EXPECT_FALSE(net.connected(a, b));
  EXPECT_FALSE(net.alive(b));
  net.set_node_up(b, true);
  EXPECT_TRUE(net.connected(a, b));
}

TEST_F(NetFixture, TransmitDeliversAndChargesEnergy) {
  const auto a = net.add_node(sensor_at(0, 0));
  const auto b = net.add_node(sensor_at(10, 0));
  bool delivered = false;
  net.transmit(a, b, 100, [&](bool ok) { delivered = ok; });
  sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_GT(net.node(a).energy.consumed(), 0.0);
  EXPECT_GT(net.node(b).energy.consumed(), 0.0);
  EXPECT_GT(net.node(a).energy.consumed(), net.node(b).energy.consumed())
      << "tx includes amplifier energy, rx does not";
  EXPECT_EQ(net.node(a).tx_bytes, 100u);
  EXPECT_EQ(net.node(b).rx_bytes, 100u);
  EXPECT_EQ(net.stats().delivered, 1u);
}

TEST_F(NetFixture, TransmitToUnreachableFails) {
  const auto a = net.add_node(sensor_at(0, 0));
  const auto c = net.add_node(sensor_at(500, 0));
  bool result = true;
  net.transmit(a, c, 100, [&](bool ok) { result = ok; });
  sim.run();
  EXPECT_FALSE(result);
}

TEST_F(NetFixture, TransmitTakesSimulatedTime) {
  const auto a = net.add_node(sensor_at(0, 0));
  const auto b = net.add_node(sensor_at(10, 0));
  double arrival = -1.0;
  net.transmit(a, b, 480, [&](bool) { arrival = sim.now().to_seconds(); });
  sim.run();
  // sensor radio: 10ms latency + 480*8/38400 = 0.1 s => >= 0.11 s
  EXPECT_GE(arrival, 0.11 - 1e-9);
}

TEST_F(NetFixture, LossyLinkEventuallyDropsWithoutRetries) {
  // Force 100% loss: every transmit must fail.
  NodeConfig c = sensor_at(0, 0);
  c.radio.loss_prob = 1.0;
  const auto a = net.add_node(c);
  c.pos = {10, 0, 0};
  const auto b = net.add_node(c);
  net.set_max_retries(2);
  bool result = true;
  net.transmit(a, b, 50, [&](bool ok) { result = ok; });
  sim.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(net.stats().dropped, 1u);
  // Retries still cost transmissions/energy.
  EXPECT_GE(net.stats().transmissions, 2u);
}

TEST_F(NetFixture, SendRouteMultiHop) {
  // Chain 0-1-2-3, spacing 20 m (in range pairwise only).
  std::vector<NodeId> chain;
  for (int i = 0; i < 4; ++i) chain.push_back(net.add_node(sensor_at(20.0 * i, 0)));
  bool ok = false;
  std::size_t hops = 0;
  net.send_route(chain, 100, [&](bool delivered, std::size_t h) {
    ok = delivered;
    hops = h;
  });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(hops, 3u);
  // Middle nodes both received and forwarded.
  EXPECT_EQ(net.node(chain[1]).rx_bytes, 100u);
  EXPECT_EQ(net.node(chain[1]).tx_bytes, 100u);
}

TEST_F(NetFixture, SendRouteFailsWhenMiddleNodeDown) {
  std::vector<NodeId> chain;
  for (int i = 0; i < 4; ++i) chain.push_back(net.add_node(sensor_at(20.0 * i, 0)));
  net.set_node_up(chain[2], false);
  bool ok = true;
  net.send_route(chain, 100, [&](bool delivered, std::size_t) { ok = delivered; });
  sim.run();
  EXPECT_FALSE(ok);
}

TEST_F(NetFixture, ShortestPathFindsChain) {
  std::vector<NodeId> chain;
  for (int i = 0; i < 5; ++i) chain.push_back(net.add_node(sensor_at(20.0 * i, 0)));
  const auto route = shortest_path(net, chain[0], chain[4]);
  EXPECT_EQ(route, chain);
}

TEST_F(NetFixture, ShortestPathPrefersFewerHops) {
  // Triangle: direct link a-c exists (20 m apart); a-b-c is longer.
  const auto a = net.add_node(sensor_at(0, 0));
  net.add_node(sensor_at(10, 10));
  const auto c = net.add_node(sensor_at(20, 0));
  const auto route = shortest_path(net, a, c);
  EXPECT_EQ(route, (std::vector<NodeId>{a, c}));
}

TEST_F(NetFixture, ShortestPathNoRoute) {
  const auto a = net.add_node(sensor_at(0, 0));
  const auto b = net.add_node(sensor_at(1000, 0));
  EXPECT_TRUE(shortest_path(net, a, b).empty());
}

TEST_F(NetFixture, ShortestPathSelf) {
  const auto a = net.add_node(sensor_at(0, 0));
  EXPECT_EQ(shortest_path(net, a, a), std::vector<NodeId>{a});
}

TEST_F(NetFixture, SinkTreeStructure) {
  // 3x3 grid, 20 m spacing, sink at corner.
  std::vector<NodeId> ids;
  for (int r = 0; r < 3; ++r) {
    for (int col = 0; col < 3; ++col) {
      ids.push_back(net.add_node(sensor_at(20.0 * col, 20.0 * r)));
    }
  }
  SinkTree tree(net, ids[0]);
  EXPECT_EQ(tree.sink(), ids[0]);
  EXPECT_TRUE(tree.contains(ids[8]));
  EXPECT_EQ(tree.depth(ids[0]), 0u);
  // Opposite corner is 4 hops away on a 3x3 4-neighbour... diagonal in-range?
  // spacing 20, diagonal 28.3 > 25 so strictly manhattan: depth 4.
  EXPECT_EQ(tree.depth(ids[8]), 4u);
  EXPECT_EQ(tree.max_depth(), 4u);
  const auto route = tree.route_to_sink(ids[8]);
  ASSERT_FALSE(route.empty());
  EXPECT_EQ(route.front(), ids[8]);
  EXPECT_EQ(route.back(), ids[0]);
  EXPECT_EQ(route.size(), 5u);
  // Every non-sink reachable node has its parent one hop shallower.
  for (NodeId id : tree.bfs_order()) {
    if (id == ids[0]) continue;
    EXPECT_EQ(tree.depth(id), tree.depth(tree.parent(id)) + 1);
  }
}

TEST_F(NetFixture, SinkTreeBfsOrderVisitsParentsFirst) {
  std::vector<NodeId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(net.add_node(sensor_at(20.0 * i, 0)));
  SinkTree tree(net, ids[0]);
  const auto& order = tree.bfs_order();
  ASSERT_EQ(order.size(), 6u);
  std::set<NodeId> seen;
  for (NodeId id : order) {
    if (id != tree.sink()) {
      EXPECT_TRUE(seen.count(tree.parent(id))) << "parent must precede child";
    }
    seen.insert(id);
  }
}

TEST_F(NetFixture, SinkTreeExcludesUnreachable) {
  const auto a = net.add_node(sensor_at(0, 0));
  const auto far = net.add_node(sensor_at(1000, 0));
  SinkTree tree(net, a);
  EXPECT_FALSE(tree.contains(far));
  EXPECT_TRUE(tree.route_to_sink(far).empty());
}

TEST_F(NetFixture, FloodReachesAllConnectedNodes) {
  std::vector<NodeId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(net.add_node(sensor_at(20.0 * i, 0)));
  net.add_node(sensor_at(2000, 0));  // island, unreachable
  std::set<NodeId> visited;
  std::size_t reached = 0;
  net.flood(ids[0], 50, [&](NodeId id) { visited.insert(id); },
            [&](std::size_t r) { reached = r; });
  sim.run();
  EXPECT_EQ(reached, 5u);
  EXPECT_EQ(visited.size(), 5u);
  EXPECT_FALSE(visited.count(5));
}

TEST_F(NetFixture, FloodFromDeadSourceReachesZero) {
  const auto a = net.add_node(sensor_at(0, 0));
  net.add_node(sensor_at(10, 0));
  net.set_node_up(a, false);
  std::size_t reached = 99;
  net.flood(a, 50, nullptr, [&](std::size_t r) { reached = r; });
  sim.run();
  EXPECT_EQ(reached, 0u);
}

TEST_F(NetFixture, GossipCheaperThanFlood) {
  // Dense cluster where flooding causes many redundant transmissions.
  std::vector<NodeId> ids;
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 5; ++c) {
      ids.push_back(net.add_node(sensor_at(8.0 * c, 8.0 * r)));
    }
  }
  net.flood(ids[0], 50, nullptr, nullptr);
  sim.run();
  const auto flood_tx = net.stats().transmissions;
  net.reset_energy();
  net.gossip(ids[0], 50, 2, nullptr, nullptr);
  sim.run();
  const auto gossip_tx = net.stats().transmissions;
  EXPECT_LT(gossip_tx, flood_tx);
}

TEST_F(NetFixture, ResetEnergyRefillsBatteries) {
  const auto a = net.add_node(sensor_at(0, 0));
  const auto b = net.add_node(sensor_at(10, 0));
  net.transmit(a, b, 1000, [](bool) {});
  sim.run();
  EXPECT_GT(net.battery_energy_consumed(), 0.0);
  net.reset_energy();
  EXPECT_DOUBLE_EQ(net.battery_energy_consumed(), 0.0);
  EXPECT_EQ(net.stats().transmissions, 0u);
}

TEST_F(NetFixture, RepeatedTransmitsKillBatteryNode) {
  NodeConfig c = sensor_at(0, 0);
  c.battery_j = 1e-4;  // tiny battery
  const auto a = net.add_node(c);
  const auto b = net.add_node(sensor_at(10, 0));
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    net.transmit(a, b, 1000, [&](bool ok) { failures += ok ? 0 : 1; });
  }
  sim.run();
  EXPECT_TRUE(net.node(a).energy.dead());
  EXPECT_GT(failures, 0);
  EXPECT_EQ(net.dead_node_count(), 1u);
}

TEST_F(NetFixture, DeployGridPlacesAllInBounds) {
  auto ids = deploy_grid(net, 49, 120.0, 120.0, sensor_at(0, 0));
  EXPECT_EQ(ids.size(), 49u);
  for (auto id : ids) {
    const auto& p = net.node(id).pos;
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 120.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 120.0);
  }
}

TEST_F(NetFixture, DeployRandomDeterministicGivenSeed) {
  common::Rng r1(777);
  common::Rng r2(777);
  auto a = deploy_random(net, 10, 100, 100, sensor_at(0, 0), r1);
  sim::Simulator sim2;
  Network net2(sim2, common::Rng(999));
  auto b = deploy_random(net2, 10, 100, 100, sensor_at(0, 0), r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(net.node(a[i]).pos, net2.node(b[i]).pos);
  }
}

// Drops the first transmission over one specific hop, then behaves
// transparently.  Deterministic stand-in for a transient frame loss.
class DropHopOnceInjector final : public FaultInjector {
 public:
  DropHopOnceInjector(NodeId from, NodeId to) : from_(from), to_(to) {}

  bool severed(NodeId, NodeId) const override { return false; }
  HopEffect on_transmit(NodeId from, NodeId to, std::uint64_t) override {
    HopEffect effect;
    if (!fired_ && from == from_ && to == to_) {
      fired_ = true;
      effect.drop = true;
    }
    return effect;
  }

 private:
  NodeId from_;
  NodeId to_;
  bool fired_ = false;
};

// Regression for the flood stale-claim bug: a node whose first delivery
// fails used to stay marked visited in SpreadState forever, blacklisting
// it from every later branch.  Here b->c is dropped once; c must still be
// reached via the other branch (a-x-y-z-c).
TEST_F(NetFixture, FloodRedeliversAfterTransientHopFailure) {
  //   a(0,0) - b(20,0) - c(40,0)
  //   |         |         |
  //   x(0,20) - y(20,20)- z(40,20)     (25 m radio: no diagonals)
  const auto a = net.add_node(sensor_at(0, 0));
  const auto b = net.add_node(sensor_at(20, 0));
  const auto c = net.add_node(sensor_at(40, 0));
  net.add_node(sensor_at(0, 20));   // x
  net.add_node(sensor_at(20, 20));  // y
  net.add_node(sensor_at(40, 20));  // z
  DropHopOnceInjector injector(b, c);
  net.set_fault_injector(&injector);
  std::set<NodeId> visited;
  std::size_t reached = 0;
  net.flood(a, 50, [&](NodeId id) { visited.insert(id); },
            [&](std::size_t r) { reached = r; });
  sim.run();
  net.set_fault_injector(nullptr);
  EXPECT_EQ(reached, 6u);
  EXPECT_TRUE(visited.count(c)) << "failed claim must be released so the "
                                   "other branch can deliver";
}

// A node that churns down mid-flood must not wedge the flood: the failed
// delivery releases its SpreadState entry and the flood quiesces without it.
TEST_F(NetFixture, FloodSkipsNodeThatChurnsDownMidFlood) {
  std::vector<NodeId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(net.add_node(sensor_at(20.0 * i, 0)));
  }
  // The far-end node churns down while the flood is in flight, before the
  // wavefront (one ~20 ms hop per link) arrives.
  std::size_t reached = 0;
  bool done = false;
  net.flood(ids[0], 50, nullptr, [&](std::size_t r) {
    reached = r;
    done = true;
  });
  sim.schedule(sim::SimTime::milliseconds(30),
               [&] { net.set_node_up(ids[4], false); });
  sim.run();
  EXPECT_TRUE(done) << "flood must quiesce even when a member went down";
  EXPECT_EQ(reached, 4u);
}

// The audited churn-mid-flood case end to end: a node goes down after the
// flood starts (its claim fails and must be released) and churns back up
// while the flood is still spreading — a later branch must deliver to it.
TEST_F(NetFixture, FloodRecoversNodeThatChurnsDownAndBackMidFlood) {
  // Same 2x3 grid as above; c is reachable from b (fails: c is down) and
  // later from z (succeeds: c is back up).
  const auto a = net.add_node(sensor_at(0, 0));
  net.add_node(sensor_at(20, 0));  // b
  const auto c = net.add_node(sensor_at(40, 0));
  net.add_node(sensor_at(0, 20));   // x
  net.add_node(sensor_at(20, 20));  // y
  net.add_node(sensor_at(40, 20));  // z
  // Hop time is ~20.4 ms (10 ms latency + 50 B at 38.4 kbps).  b claims c
  // at ~20 ms (down -> claim released); z claims c at ~61 ms (back up).
  sim.schedule(sim::SimTime::milliseconds(15),
               [&] { net.set_node_up(c, false); });
  sim.schedule(sim::SimTime::milliseconds(50),
               [&] { net.set_node_up(c, true); });
  std::set<NodeId> visited;
  std::size_t reached = 0;
  net.flood(a, 50, [&](NodeId id) { visited.insert(id); },
            [&](std::size_t r) { reached = r; });
  sim.run();
  EXPECT_EQ(reached, 6u);
  EXPECT_TRUE(visited.count(c))
      << "node must be re-claimable after churning back up mid-flood";
}

// Partition-then-heal: no delivery crosses an active partition, routing
// (sink trees) excludes the cut side, and after the heal a rebuilt tree
// converges over the full deployment again.
TEST_F(NetFixture, SinkTreePartitionThenHeal) {
  // Chain s(0) - m(20) - f(40) - g(60); cut {f, g} off for 5 s.
  const auto s = net.add_node(sensor_at(0, 0));
  const auto m = net.add_node(sensor_at(20, 0));
  const auto f = net.add_node(sensor_at(40, 0));
  const auto g = net.add_node(sensor_at(60, 0));
  sim::ChaosEngine engine(net, 77);
  sim::Fault cut;
  cut.kind = sim::FaultKind::kPartition;
  cut.at = sim::SimTime::seconds(1.0);
  cut.duration = sim::SimTime::seconds(5.0);
  cut.group = {f, g};
  engine.arm_schedule({cut});

  const std::uint64_t version_before = net.topology_version();
  sim.run_until(sim::SimTime::seconds(2.0));  // partition active

  // Routing observes the cut: a fresh tree only spans the sink's side...
  SinkTree during(net, s);
  EXPECT_TRUE(during.contains(m));
  EXPECT_FALSE(during.contains(f));
  EXPECT_FALSE(during.contains(g));
  EXPECT_TRUE(shortest_path(net, s, f).empty());
  // ...the inside of the cut still holds together...
  EXPECT_TRUE(net.connected(f, g));
  // ...and no message is delivered across the active partition.
  const std::uint64_t f_rx_before = net.node(f).rx_bytes;
  bool delivered = true;
  net.transmit(m, f, 64, [&](bool ok) { delivered = ok; });
  sim.run_until(sim::SimTime::seconds(3.0));
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.node(f).rx_bytes, f_rx_before);

  sim.run();  // heal fires at t = 6 s
  EXPECT_TRUE(engine.quiescent());
  EXPECT_GT(net.topology_version(), version_before)
      << "cut and heal must invalidate routing caches";

  // After the heal a rebuilt tree converges over the whole chain and
  // passes the structural invariant.
  SinkTree healed(net, s);
  EXPECT_TRUE(healed.contains(f));
  EXPECT_TRUE(healed.contains(g));
  EXPECT_EQ(healed.depth(g), 3u);
  EXPECT_FALSE(sim::check_sink_tree_consistent(net, s).has_value());
  bool redelivered = false;
  net.transmit(m, f, 64, [&](bool ok) { redelivered = ok; });
  sim.run();
  EXPECT_TRUE(redelivered);
}

TEST_F(NetFixture, ChurnTogglesNodes) {
  std::vector<NodeId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(net.add_node(sensor_at(20.0 * i, 0)));
  ChurnConfig config;
  config.mean_up = sim::SimTime::seconds(5.0);
  config.mean_down = sim::SimTime::seconds(2.0);
  config.horizon = sim::SimTime::seconds(100.0);
  NodeChurn churn(net, ids, config, common::Rng(4242));
  int downs = 0;
  int ups = 0;
  churn.set_transition_callback([&](NodeId, bool up) { (up ? ups : downs)++; });
  churn.start();
  sim.run_until(sim::SimTime::seconds(100.0));
  sim.clear();
  EXPECT_GT(downs, 0);
  EXPECT_GT(ups, 0);
  EXPECT_EQ(churn.transitions(), static_cast<std::size_t>(downs + ups));
}

TEST_F(NetFixture, ChurnIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator s;
    Network n(s, common::Rng(1));
    std::vector<NodeId> ids;
    for (int i = 0; i < 4; ++i) {
      NodeConfig c;
      c.pos = {20.0 * i, 0, 0};
      ids.push_back(n.add_node(c));
    }
    ChurnConfig config;
    config.mean_up = sim::SimTime::seconds(3.0);
    config.mean_down = sim::SimTime::seconds(1.0);
    config.horizon = sim::SimTime::seconds(50.0);
    NodeChurn churn(n, ids, config, common::Rng(seed));
    churn.start();
    s.run_until(sim::SimTime::seconds(50.0));
    s.clear();
    return churn.transitions();
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

}  // namespace
}  // namespace pgrid::net
