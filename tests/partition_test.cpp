// Unit tests for dynamic partitioning: model support matrix, analytic cost
// estimates, real execution under every model, the ID3 tree, and the
// adaptive decision maker.
#include <gtest/gtest.h>

#include <memory>

#include "partition/cost_model.hpp"
#include "partition/decision_maker.hpp"
#include "partition/decision_tree.hpp"
#include "partition/executor.hpp"
#include "query/parser.hpp"

namespace pgrid::partition {
namespace {

using query::QueryClass;

// ---------------------------------------------------------------------------
// Model support matrix
// ---------------------------------------------------------------------------

TEST(Models, SupportMatrix) {
  EXPECT_TRUE(model_supports(SolutionModel::kAllToBase, QueryClass::kSimple));
  EXPECT_FALSE(
      model_supports(SolutionModel::kTreeAggregate, QueryClass::kSimple));
  EXPECT_TRUE(
      model_supports(SolutionModel::kTreeAggregate, QueryClass::kAggregate));
  EXPECT_FALSE(
      model_supports(SolutionModel::kHybridRegionGrid, QueryClass::kAggregate));
  EXPECT_TRUE(
      model_supports(SolutionModel::kHybridRegionGrid, QueryClass::kComplex));
  EXPECT_FALSE(
      model_supports(SolutionModel::kTreeAggregate, QueryClass::kComplex));
}

TEST(Models, CandidateSets) {
  EXPECT_EQ(candidates_for(QueryClass::kSimple).size(), 1u);
  EXPECT_EQ(candidates_for(QueryClass::kAggregate).size(), 4u);
  EXPECT_EQ(candidates_for(QueryClass::kComplex).size(), 4u);
}

TEST(Models, Names) {
  EXPECT_EQ(to_string(SolutionModel::kTreeAggregate), "tree");
  EXPECT_EQ(to_string(SolutionModel::kHybridRegionGrid),
            "hybrid-region-grid");
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

NetworkProfile typical_profile() {
  NetworkProfile p;
  p.sensor_count = 100;
  p.avg_depth_hops = 5.0;
  p.max_depth_hops = 10.0;
  p.avg_hop_distance_m = 15.0;
  p.cluster_count = 10;
  p.grid_flops_per_s = 1e9;
  return p;
}

TEST(CostModel, TreeCheapestForAggregates) {
  const auto p = typical_profile();
  const auto tree =
      estimate_cost(p, QueryClass::kAggregate, SolutionModel::kTreeAggregate);
  const auto raw =
      estimate_cost(p, QueryClass::kAggregate, SolutionModel::kAllToBase);
  const auto cluster = estimate_cost(p, QueryClass::kAggregate,
                                     SolutionModel::kClusterAggregate);
  EXPECT_LT(tree.energy_j, cluster.energy_j);
  EXPECT_LT(cluster.energy_j, raw.energy_j);
}

TEST(CostModel, UnsupportedPairIsInfinite) {
  const auto p = typical_profile();
  const auto e =
      estimate_cost(p, QueryClass::kSimple, SolutionModel::kTreeAggregate);
  EXPECT_TRUE(std::isinf(e.energy_j));
  EXPECT_TRUE(std::isinf(e.response_s));
}

TEST(CostModel, GridOffloadFasterThanBaseForHeavyCompute) {
  auto p = typical_profile();
  p.query_compute_ops = 1e10;  // a big PDE
  const auto base =
      estimate_cost(p, QueryClass::kComplex, SolutionModel::kAllToBase);
  const auto grid =
      estimate_cost(p, QueryClass::kComplex, SolutionModel::kGridOffload);
  EXPECT_LT(grid.response_s, base.response_s)
      << "1e10 ops at 5e7 ops/s base vs 1e9 flops grid";
}

TEST(CostModel, BaseFasterForTinyCompute) {
  auto p = typical_profile();
  p.query_compute_ops = 1e3;
  const auto base =
      estimate_cost(p, QueryClass::kComplex, SolutionModel::kAllToBase);
  const auto grid =
      estimate_cost(p, QueryClass::kComplex, SolutionModel::kGridOffload);
  EXPECT_LT(base.response_s, grid.response_s)
      << "backhaul round trip dominates tiny jobs";
}

TEST(CostModel, NoGridMeansOffloadUnsupported) {
  auto p = typical_profile();
  p.grid_flops_per_s = 0.0;
  const auto e =
      estimate_cost(p, QueryClass::kComplex, SolutionModel::kGridOffload);
  EXPECT_TRUE(std::isinf(e.response_s));
}

TEST(CostModel, HybridSavesEnergyAtAccuracyCost) {
  auto p = typical_profile();
  p.query_compute_ops = 1e9;
  const auto full =
      estimate_cost(p, QueryClass::kComplex, SolutionModel::kGridOffload);
  const auto hybrid = estimate_cost(p, QueryClass::kComplex,
                                    SolutionModel::kHybridRegionGrid);
  EXPECT_LT(hybrid.energy_j, full.energy_j);
  EXPECT_LT(hybrid.accuracy, full.accuracy);
  EXPECT_GT(hybrid.accuracy, 0.0);
}

TEST(CostModel, EnergyScalesWithNetworkSize) {
  auto small = typical_profile();
  small.sensor_count = 25;
  auto large = typical_profile();
  large.sensor_count = 400;
  large.avg_depth_hops = 10;
  large.max_depth_hops = 20;
  for (auto model : candidates_for(QueryClass::kAggregate)) {
    const auto e_small =
        estimate_cost(small, QueryClass::kAggregate, model);
    const auto e_large =
        estimate_cost(large, QueryClass::kAggregate, model);
    EXPECT_GT(e_large.energy_j, e_small.energy_j) << to_string(model);
  }
}

TEST(CostModel, BestModelRespectsCostMetric) {
  auto p = typical_profile();
  p.query_compute_ops = 1e9;
  // Energy objective: the hybrid moves least sensor data.
  EXPECT_EQ(best_model(p, QueryClass::kComplex, query::CostMetric::kEnergy),
            SolutionModel::kHybridRegionGrid);
  // Accuracy objective: full-fidelity models only.
  const auto accurate =
      best_model(p, QueryClass::kComplex, query::CostMetric::kAccuracy);
  EXPECT_NE(accurate, SolutionModel::kHybridRegionGrid);
  // Aggregates under any metric: the tree wins energy.
  EXPECT_EQ(best_model(p, QueryClass::kAggregate, query::CostMetric::kNone),
            SolutionModel::kTreeAggregate);
}

TEST(CostModel, ObjectiveSelectsDimension) {
  CostEstimate e;
  e.energy_j = 5.0;
  e.response_s = 2.0;
  e.accuracy = 0.5;
  EXPECT_DOUBLE_EQ(objective(e, query::CostMetric::kEnergy), 5.0);
  EXPECT_DOUBLE_EQ(objective(e, query::CostMetric::kNone), 5.0);
  EXPECT_DOUBLE_EQ(objective(e, query::CostMetric::kTime), 2.0);
  EXPECT_GT(objective(e, query::CostMetric::kAccuracy), 1e5);
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

class ExecutorFixture : public ::testing::Test {
 protected:
  ExecutorFixture() : net_(sim_, common::Rng(41)) {
    sensornet::SensorNetworkConfig config;
    config.sensor_count = 49;
    config.width_m = 120.0;
    config.height_m = 120.0;
    config.base_pos = {-5, -5, 0};
    config.noise_std = 0.0;
    snet_ = std::make_unique<sensornet::SensorNetwork>(net_, config,
                                                       common::Rng(7));
    grid_ = std::make_unique<grid::GridInfrastructure>(
        net_, snet_->base_station(),
        std::vector<grid::GridMachineSpec>{{"hpc", 2e9}});
    field_ = std::make_unique<sensornet::BuildingTemperatureField>(20.0);
    sensornet::FireSource fire;
    fire.pos = {60, 60, 0};
    // Ignited in the (simulated) past and non-spreading: the field is fully
    // developed and time-invariant, so runs at different sim times agree.
    fire.start = sim::SimTime::seconds(-3600.0);
    fire.ramp_seconds = 1.0;
    fire.spread_m_per_s = 0.0;
    field_->ignite(fire);
  }

  ExecutionContext context(std::size_t pde = 13) {
    ExecutionContext ctx{*snet_, *field_};
    ctx.grid = grid_.get();
    ctx.pde_nx = pde;
    ctx.pde_ny = pde;
    return ctx;
  }

  ActualCost run(const std::string& text, SolutionModel model,
                 std::size_t pde = 13) {
    auto parsed = query::parse_query(text);
    EXPECT_TRUE(parsed.ok()) << parsed.error();
    const auto cls = classifier_.classify(parsed.value());
    ActualCost result;
    auto ctx = context(pde);
    execute_query(ctx, parsed.value(), cls, model,
                  [&](ActualCost cost) { result = std::move(cost); });
    sim_.run();
    net_.reset_energy();
    return result;
  }

  sim::Simulator sim_;
  net::Network net_;
  std::unique_ptr<sensornet::SensorNetwork> snet_;
  std::unique_ptr<grid::GridInfrastructure> grid_;
  std::unique_ptr<sensornet::BuildingTemperatureField> field_;
  query::QueryClassifier classifier_;
};

TEST_F(ExecutorFixture, SimpleQueryReadsTheSensor) {
  const auto cost =
      run("SELECT temp FROM sensors WHERE sensor = 24", SolutionModel::kAllToBase);
  ASSERT_TRUE(cost.ok) << cost.error;
  const auto sensor = snet_->sensors()[24];
  EXPECT_NEAR(cost.value,
              field_->value(net_.node(sensor).pos, sim_.now()), 5.0);
  EXPECT_GT(cost.response_s, 0.0);
  EXPECT_GT(cost.energy_j, 0.0);
}

TEST_F(ExecutorFixture, SimpleQueryBadSensorFails) {
  const auto cost = run("SELECT temp FROM sensors WHERE sensor = 9999",
                        SolutionModel::kAllToBase);
  EXPECT_FALSE(cost.ok);
  EXPECT_FALSE(cost.error.empty());
}

TEST_F(ExecutorFixture, AggregateModelsAgreeOnAnswer) {
  const std::string q = "SELECT AVG(temp) FROM sensors";
  const auto raw = run(q, SolutionModel::kAllToBase);
  const auto tree = run(q, SolutionModel::kTreeAggregate);
  const auto cluster = run(q, SolutionModel::kClusterAggregate);
  const auto grid_model = run(q, SolutionModel::kGridOffload);
  ASSERT_TRUE(raw.ok);
  ASSERT_TRUE(tree.ok);
  ASSERT_TRUE(cluster.ok);
  ASSERT_TRUE(grid_model.ok);
  // Same field, zero noise, complete collection -> near-identical answers.
  EXPECT_NEAR(tree.value, raw.value, 1.0);
  EXPECT_NEAR(cluster.value, raw.value, 1.0);
  EXPECT_NEAR(grid_model.value, raw.value, 1.0);
}

TEST_F(ExecutorFixture, TreeBeatsRawOnMeasuredEnergy) {
  const std::string q = "SELECT MAX(temp) FROM sensors";
  const auto raw = run(q, SolutionModel::kAllToBase);
  const auto tree = run(q, SolutionModel::kTreeAggregate);
  EXPECT_LT(tree.energy_j, raw.energy_j);
  EXPECT_LT(tree.data_bytes, raw.data_bytes);
}

TEST_F(ExecutorFixture, ComplexQueryOnGridFindsTheFire) {
  const auto cost = run("SELECT TEMP_DISTRIBUTION(temp) FROM sensors",
                        SolutionModel::kGridOffload);
  ASSERT_TRUE(cost.ok) << cost.error;
  ASSERT_TRUE(cost.distribution.has_value());
  // The hottest point of the interpolated field is near the fire at (60,60).
  const auto& dist = *cost.distribution;
  EXPECT_GT(dist.value_at({60, 60, 0}), dist.value_at({5, 115, 0}) + 50.0);
  EXPECT_GT(cost.compute_ops, 1e4);
}

TEST_F(ExecutorFixture, ComplexOnBaseSlowerThanGrid) {
  // A big enough PDE that compute dominates the backhaul round trip.
  const std::string q = "SELECT TEMP_DISTRIBUTION(temp) FROM sensors";
  const auto on_base = run(q, SolutionModel::kAllToBase, 41);
  const auto on_grid = run(q, SolutionModel::kGridOffload, 41);
  ASSERT_TRUE(on_base.ok);
  ASSERT_TRUE(on_grid.ok);
  EXPECT_GT(on_base.response_s, on_grid.response_s)
      << "base 5e7 ops/s vs grid 2e9 flops/s";
}

TEST_F(ExecutorFixture, HandheldSlowestPlacement) {
  const std::string q = "SELECT TEMP_DISTRIBUTION(temp) FROM sensors";
  const auto on_base = run(q, SolutionModel::kAllToBase);
  const auto handheld = run(q, SolutionModel::kHandheldLocal);
  ASSERT_TRUE(handheld.ok);
  EXPECT_GT(handheld.response_s, on_base.response_s);
}

TEST_F(ExecutorFixture, HybridUsesLessSensorEnergyLowerAccuracy) {
  const std::string q = "SELECT TEMP_DISTRIBUTION(temp) FROM sensors";
  const auto full = run(q, SolutionModel::kGridOffload);
  const auto hybrid = run(q, SolutionModel::kHybridRegionGrid);
  ASSERT_TRUE(full.ok);
  ASSERT_TRUE(hybrid.ok);
  EXPECT_LT(hybrid.energy_j, full.energy_j);
  EXPECT_LT(hybrid.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(full.accuracy, 1.0);
}

TEST_F(ExecutorFixture, ContinuousQueryRunsEpochs) {
  auto parsed = query::parse_query(
      "SELECT AVG(temp) FROM sensors EPOCH DURATION 10");
  ASSERT_TRUE(parsed.ok());
  const auto cls = classifier_.classify(parsed.value());
  ASSERT_TRUE(cls.continuous);
  std::vector<ActualCost> epochs;
  auto ctx = context();
  execute_continuous(ctx, parsed.value(), cls,
                     SolutionModel::kTreeAggregate, 5,
                     [&](std::vector<ActualCost> r) { epochs = std::move(r); });
  sim_.run();
  ASSERT_EQ(epochs.size(), 5u);
  for (const auto& e : epochs) EXPECT_TRUE(e.ok);
  // Epochs are spaced: total simulated time >= 4 epochs * 10 s.
  EXPECT_GE(sim_.now().to_seconds(), 40.0);
}

TEST_F(ExecutorFixture, ProfileFromContextReflectsTopology) {
  auto ctx = context();
  auto parsed = query::parse_query("SELECT AVG(temp) FROM sensors");
  const auto cls = classifier_.classify(parsed.value());
  const auto profile = profile_from(ctx, cls);
  EXPECT_EQ(profile.sensor_count, 49u);
  EXPECT_GT(profile.avg_depth_hops, 1.0);
  EXPECT_GE(profile.max_depth_hops, profile.avg_depth_hops);
  EXPECT_GT(profile.avg_hop_distance_m, 1.0);
  EXPECT_DOUBLE_EQ(profile.grid_flops_per_s, 2e9);
}

TEST_F(ExecutorFixture, EstimatesTrackMeasurementsWithinOrderOfMagnitude) {
  // The estimators exist to rank models; sanity-check they are in the right
  // ballpark against ground truth for aggregates.
  auto ctx = context();
  auto parsed = query::parse_query("SELECT AVG(temp) FROM sensors");
  const auto cls = classifier_.classify(parsed.value());
  const auto profile = profile_from(ctx, cls);
  for (auto model :
       {SolutionModel::kAllToBase, SolutionModel::kTreeAggregate}) {
    const auto estimate = estimate_cost(profile, cls.inner, model);
    const auto actual = run("SELECT AVG(temp) FROM sensors", model);
    ASSERT_TRUE(actual.ok);
    EXPECT_GT(estimate.energy_j, actual.energy_j / 10.0) << to_string(model);
    EXPECT_LT(estimate.energy_j, actual.energy_j * 10.0) << to_string(model);
  }
}

// ---------------------------------------------------------------------------
// Decision tree
// ---------------------------------------------------------------------------

TEST(DecisionTree, LearnsSimpleRule) {
  // label = feature0.
  std::vector<TreeSample> samples;
  for (int v = 0; v < 3; ++v) {
    for (int rep = 0; rep < 5; ++rep) {
      samples.push_back({{v, rep % 2}, v});
    }
  }
  DecisionTree tree;
  tree.train(samples, {3, 2}, 3);
  ASSERT_TRUE(tree.trained());
  EXPECT_EQ(tree.predict({0, 0}), 0);
  EXPECT_EQ(tree.predict({1, 1}), 1);
  EXPECT_EQ(tree.predict({2, 0}), 2);
}

TEST(DecisionTree, LearnsConjunction) {
  // label = (f0 == 1 && f1 == 1).
  std::vector<TreeSample> samples;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int rep = 0; rep < 4; ++rep) {
        samples.push_back({{a, b}, (a == 1 && b == 1) ? 1 : 0});
      }
    }
  }
  DecisionTree tree;
  tree.train(samples, {2, 2}, 2);
  EXPECT_EQ(tree.predict({1, 1}), 1);
  EXPECT_EQ(tree.predict({1, 0}), 0);
  EXPECT_EQ(tree.predict({0, 1}), 0);
  EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTree, EmptyTrainingGivesUntrained) {
  DecisionTree tree;
  tree.train({}, {2}, 2);
  EXPECT_FALSE(tree.trained());
  EXPECT_EQ(tree.predict({0}), 0);
}

TEST(DecisionTree, UnseenValueFallsBackToMajority) {
  std::vector<TreeSample> samples;
  for (int rep = 0; rep < 8; ++rep) samples.push_back({{0}, 1});
  samples.push_back({{1}, 0});
  DecisionTree tree;
  tree.train(samples, {3}, 2);  // value 2 never seen
  EXPECT_EQ(tree.predict({2}), 1) << "majority label";
}

TEST(DecisionTree, RenderMentionsFeatures) {
  std::vector<TreeSample> samples{{{0}, 0}, {{1}, 1}, {{0}, 0}, {{1}, 1}};
  DecisionTree tree;
  tree.train(samples, {2}, 2);
  const auto text = tree.render({"color"}, {"no", "yes"});
  EXPECT_NE(text.find("color"), std::string::npos);
  EXPECT_NE(text.find("yes"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Decision maker
// ---------------------------------------------------------------------------

TEST(DecisionMaker, AnalyticFallbackMatchesBestModel) {
  DecisionMaker maker;
  const auto p = typical_profile();
  EXPECT_EQ(maker.decide(QueryClass::kAggregate, query::CostMetric::kNone, p),
            best_model(p, QueryClass::kAggregate, query::CostMetric::kNone));
}

TEST(DecisionMaker, TreeTakesOverAfterTraining) {
  DecisionMaker maker;
  auto p = typical_profile();
  // Teach a deliberately non-analytic rule: aggregates -> cluster.
  for (int i = 0; i < 20; ++i) {
    maker.add_example(QueryClass::kAggregate, query::CostMetric::kNone, p,
                      SolutionModel::kClusterAggregate);
  }
  maker.retrain();
  ASSERT_TRUE(maker.tree_trained());
  EXPECT_EQ(maker.decide(QueryClass::kAggregate, query::CostMetric::kNone, p),
            SolutionModel::kClusterAggregate);
}

TEST(DecisionMaker, TreeProposalMustSupportQueryClass) {
  DecisionMaker maker;
  auto p = typical_profile();
  // Train only on complex queries labelled grid-offload...
  for (int i = 0; i < 10; ++i) {
    maker.add_example(QueryClass::kComplex, query::CostMetric::kNone, p,
                      SolutionModel::kGridOffload);
  }
  maker.retrain();
  // ...then ask about a simple query: grid-offload is unsupported there, so
  // the analytic fallback must kick in.
  EXPECT_EQ(maker.decide(QueryClass::kSimple, query::CostMetric::kNone, p),
            SolutionModel::kAllToBase);
}

TEST(DecisionMaker, CalibrationCorrectsEstimates) {
  DecisionMaker maker;
  auto p = typical_profile();
  const auto raw =
      estimate_cost(p, QueryClass::kAggregate, SolutionModel::kTreeAggregate);
  // Observed actuals are consistently 2x the estimate.
  for (int i = 0; i < 10; ++i) {
    maker.observe(QueryClass::kAggregate, SolutionModel::kTreeAggregate, raw,
                  raw.energy_j * 2.0, raw.response_s * 2.0);
  }
  EXPECT_NEAR(maker.energy_calibration(QueryClass::kAggregate,
                                       SolutionModel::kTreeAggregate),
              2.0, 1e-9);
  const auto calibrated = maker.calibrated_estimate(
      p, QueryClass::kAggregate, SolutionModel::kTreeAggregate);
  EXPECT_NEAR(calibrated.energy_j, raw.energy_j * 2.0, 1e-12);
  EXPECT_NEAR(calibrated.response_s, raw.response_s * 2.0, 1e-12);
  EXPECT_EQ(maker.observations(QueryClass::kAggregate,
                               SolutionModel::kTreeAggregate),
            10u);
}

TEST(DecisionMaker, CalibrationIsPerQueryClass) {
  // A ratio learned on simple queries must not leak into aggregates — this
  // was a real bug: a cheap one-sensor read miscalibrated all-to-base and
  // beat tree aggregation for whole-network averages.
  DecisionMaker maker;
  auto p = typical_profile();
  const auto simple_est =
      estimate_cost(p, QueryClass::kSimple, SolutionModel::kAllToBase);
  for (int i = 0; i < 10; ++i) {
    maker.observe(QueryClass::kSimple, SolutionModel::kAllToBase, simple_est,
                  simple_est.energy_j * 0.05, simple_est.response_s);
  }
  EXPECT_NEAR(maker.energy_calibration(QueryClass::kAggregate,
                                       SolutionModel::kAllToBase),
              1.0, 1e-12)
      << "aggregate cell untouched";
  EXPECT_EQ(maker.decide(QueryClass::kAggregate, query::CostMetric::kEnergy, p),
            SolutionModel::kTreeAggregate);
}

TEST(DecisionMaker, CalibrationCanFlipTheDecision) {
  DecisionMaker maker;
  auto p = typical_profile();
  // Tree looks cheapest analytically; teach the maker that tree actually
  // costs 100x its estimate (e.g. retransmission storms on this deployment).
  const auto tree_est =
      estimate_cost(p, QueryClass::kAggregate, SolutionModel::kTreeAggregate);
  for (int i = 0; i < 5; ++i) {
    maker.observe(QueryClass::kAggregate, SolutionModel::kTreeAggregate,
                  tree_est, tree_est.energy_j * 100.0, tree_est.response_s);
  }
  const auto decided =
      maker.decide(QueryClass::kAggregate, query::CostMetric::kEnergy, p);
  EXPECT_NE(decided, SolutionModel::kTreeAggregate);
}

TEST(DecisionMaker, FeaturizationIsStable) {
  auto p = typical_profile();
  const auto f1 =
      Features::of(QueryClass::kComplex, query::CostMetric::kTime, p);
  const auto f2 =
      Features::of(QueryClass::kComplex, query::CostMetric::kTime, p);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(f1.size(), Features::kCount);
  EXPECT_EQ(Features::cardinalities().size(), Features::kCount);
  EXPECT_EQ(Features::names().size(), Features::kCount);
}

}  // namespace
}  // namespace pgrid::partition
