// Tests for decision-maker experience persistence: save/load round-trips,
// tree retraining on load, calibration restoration, and rejection of
// malformed input.
#include <gtest/gtest.h>

#include "partition/persistence.hpp"

namespace pgrid::partition {
namespace {

NetworkProfile profile_for_test() {
  NetworkProfile p;
  p.sensor_count = 100;
  p.avg_depth_hops = 5.0;
  p.max_depth_hops = 10.0;
  p.cluster_count = 10;
  p.grid_flops_per_s = 1e9;
  return p;
}

TEST(Persistence, EmptyMakerRoundTrips) {
  DecisionMaker maker;
  const auto text = save_experience(maker);
  DecisionMaker restored;
  const auto loaded = load_experience(text, restored);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value(), 0u);
  EXPECT_FALSE(restored.tree_trained());
}

TEST(Persistence, SamplesAndTreeSurviveRoundTrip) {
  DecisionMaker maker;
  const auto p = profile_for_test();
  for (int i = 0; i < 10; ++i) {
    maker.add_example(query::QueryClass::kAggregate,
                      query::CostMetric::kNone, p,
                      SolutionModel::kClusterAggregate);
    maker.add_example(query::QueryClass::kComplex, query::CostMetric::kTime,
                      p, SolutionModel::kGridOffload);
  }
  maker.retrain();
  const auto decision_before = maker.decide(
      query::QueryClass::kAggregate, query::CostMetric::kNone, p);

  DecisionMaker restored;
  const auto loaded = load_experience(save_experience(maker), restored);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value(), 20u);
  EXPECT_TRUE(restored.tree_trained()) << "tree retrains on load";
  EXPECT_EQ(restored.decide(query::QueryClass::kAggregate,
                            query::CostMetric::kNone, p),
            decision_before);
  EXPECT_EQ(restored.decide(query::QueryClass::kComplex,
                            query::CostMetric::kTime, p),
            SolutionModel::kGridOffload);
}

TEST(Persistence, CalibrationsSurviveRoundTrip) {
  DecisionMaker maker;
  const auto p = profile_for_test();
  const auto estimate = estimate_cost(p, query::QueryClass::kAggregate,
                                      SolutionModel::kTreeAggregate);
  for (int i = 0; i < 7; ++i) {
    maker.observe(query::QueryClass::kAggregate,
                  SolutionModel::kTreeAggregate, estimate,
                  estimate.energy_j * 3.0, estimate.response_s * 0.5);
  }
  DecisionMaker restored;
  ASSERT_TRUE(load_experience(save_experience(maker), restored).ok());
  EXPECT_EQ(restored.observations(query::QueryClass::kAggregate,
                                  SolutionModel::kTreeAggregate),
            7u);
  EXPECT_NEAR(restored.energy_calibration(query::QueryClass::kAggregate,
                                          SolutionModel::kTreeAggregate),
              3.0, 1e-9);
  EXPECT_NEAR(restored.response_calibration(query::QueryClass::kAggregate,
                                            SolutionModel::kTreeAggregate),
              0.5, 1e-9);
  // Untouched cells stay neutral.
  EXPECT_NEAR(restored.energy_calibration(query::QueryClass::kComplex,
                                          SolutionModel::kGridOffload),
              1.0, 1e-12);
}

TEST(Persistence, MalformedInputRejected) {
  DecisionMaker maker;
  EXPECT_FALSE(load_experience("", maker).ok());
  EXPECT_FALSE(load_experience("wrong-header\n", maker).ok());
  EXPECT_FALSE(
      load_experience("pgrid-experience-v1\nsample 1 2 -> \n", maker).ok());
  EXPECT_FALSE(
      load_experience("pgrid-experience-v1\nsample 1 2 3 -> 1\n", maker)
          .ok())
      << "feature count mismatch";
  EXPECT_FALSE(
      load_experience("pgrid-experience-v1\ncal 0 99 1 1 1 1\n", maker).ok())
      << "model index out of range";
  EXPECT_FALSE(
      load_experience("pgrid-experience-v1\nbogus record\n", maker).ok());
}

TEST(Persistence, LoadReplacesExistingExperience) {
  DecisionMaker donor;
  const auto p = profile_for_test();
  donor.add_example(query::QueryClass::kAggregate, query::CostMetric::kNone,
                    p, SolutionModel::kTreeAggregate);
  const auto text = save_experience(donor);

  DecisionMaker maker;
  for (int i = 0; i < 5; ++i) {
    maker.add_example(query::QueryClass::kComplex, query::CostMetric::kNone,
                      p, SolutionModel::kHandheldLocal);
  }
  ASSERT_TRUE(load_experience(text, maker).ok());
  EXPECT_EQ(maker.samples().size(), 1u);
}

}  // namespace
}  // namespace pgrid::partition
