// Determinism properties of the chaos engine: a seed fully determines the
// fault schedule and the entire run it produces — network counters and
// ledger totals are bit-identical across runs — while different seeds
// produce different schedules.
#include <gtest/gtest.h>

#include "chaos_harness.hpp"
#include "sim/chaos.hpp"

namespace {

using namespace pgrid;

class ChaosDeterminism
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  static chaos_harness::ScenarioConfig make_config(std::size_t mix_index,
                                                   std::uint64_t seed) {
    chaos_harness::ScenarioConfig config;
    config.seed = seed;
    config.mix = sim::canned_mixes()[mix_index];
    config.fault_count = 10;
    config.horizon_s = 60.0;
    return config;
  }
};

TEST_P(ChaosDeterminism, SameSeedBitIdenticalScheduleStatsAndLedger) {
  const auto [mix_index, seed] = GetParam();
  const auto config = make_config(mix_index, seed);

  const auto first = chaos_harness::run_scenario(config);
  const auto second = chaos_harness::run_scenario(config);

  // Identical fault schedule, fault for fault.
  EXPECT_EQ(first.schedule, second.schedule)
      << "first:\n" << sim::format_schedule(first.schedule) << "second:\n"
      << sim::format_schedule(second.schedule);
  EXPECT_EQ(first.faults_injected, second.faults_injected);
  EXPECT_EQ(first.crash_transitions, second.crash_transitions);

  // Identical traffic counters — exact, not approximate.
  EXPECT_EQ(first.net_stats.transmissions, second.net_stats.transmissions);
  EXPECT_EQ(first.net_stats.delivered, second.net_stats.delivered);
  EXPECT_EQ(first.net_stats.dropped, second.net_stats.dropped);
  EXPECT_EQ(first.net_stats.duplicated, second.net_stats.duplicated);
  EXPECT_EQ(first.net_stats.bytes_sent, second.net_stats.bytes_sent);
  // Energy is a double, but both runs accumulate in the same order, so
  // bit-identical equality is the contract.
  EXPECT_EQ(first.net_stats.energy_j, second.net_stats.energy_j);

  // Identical ledger totals.
  EXPECT_EQ(first.ledger_total.bytes, second.ledger_total.bytes);
  EXPECT_EQ(first.ledger_total.count, second.ledger_total.count);
  EXPECT_EQ(first.ledger_total.joules, second.ledger_total.joules);
  EXPECT_EQ(first.ledger_total.ops, second.ledger_total.ops);
  EXPECT_EQ(first.ledger_total.sim_seconds, second.ledger_total.sim_seconds);
  EXPECT_EQ(first.ledger_chaos_count, second.ledger_chaos_count);

  // Identical query outcomes.
  EXPECT_EQ(first.queries_ok, second.queries_ok);
  EXPECT_EQ(first.queries_failed, second.queries_failed);
}

TEST_P(ChaosDeterminism, DifferentSeedsDifferentSchedules) {
  const auto [mix_index, seed] = GetParam();
  sim::Simulator sim;
  net::Network network(sim, common::Rng(3));
  for (int i = 0; i < 12; ++i) {
    net::NodeConfig cfg;
    cfg.pos = {8.0 * i, 0.0, 0.0};
    network.add_node(cfg);
  }
  sim::ChaosConfig config;
  config.fault_count = 10;
  config.mix = sim::canned_mixes()[mix_index];
  const auto a = sim::generate_schedule(network, config, seed);
  const auto b = sim::generate_schedule(network, config, seed + 1);
  EXPECT_NE(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    AllMixes, ChaosDeterminism,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}),
                       ::testing::Values(std::uint64_t{31},
                                         std::uint64_t{1977})),
    [](const auto& info) {
      return sim::canned_mixes()[std::get<0>(info.param)].name.substr(0, 1) +
             "mix" + std::to_string(std::get<0>(info.param)) + "seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
