// Property tests for discovery: wire-format round-trips on randomized
// descriptions, matcher ranking invariants, and subsumption-set containment
// — swept over seeds.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "discovery/matcher.hpp"
#include "discovery/ontology.hpp"

namespace pgrid::discovery {
namespace {

const char* kClasses[] = {"TemperatureSensor", "SmokeSensor",
                          "PathogenSensor",    "HeatEquationSolver",
                          "ClusteringService", "StorageService",
                          "ColorPrinter",      "ColorLaserPrinter",
                          "LaserPrinter"};

ServiceDescription random_service(common::Rng& rng, std::size_t index) {
  ServiceDescription s;
  s.name = "svc-" + std::to_string(index);
  s.service_class = kClasses[rng.index(std::size(kClasses))];
  const std::size_t props = rng.index(4);
  for (std::size_t p = 0; p < props; ++p) {
    const std::size_t kind = rng.index(3);
    const std::string key = "p" + std::to_string(p);
    if (kind == 0) s.properties[key] = rng.uniform(-100.0, 100.0);
    else if (kind == 1) s.properties[key] = rng.bernoulli(0.5);
    else s.properties[key] = std::string("v") + std::to_string(rng.index(9));
  }
  if (rng.bernoulli(0.5)) s.interfaces.push_back("op" + std::to_string(index));
  s.uuid = Uuid{rng.next_u64(), rng.next_u64()};
  s.cost = rng.uniform(0.0, 10.0);
  s.provider = static_cast<agent::AgentId>(rng.index(1000));
  s.node = static_cast<net::NodeId>(rng.index(1000));
  if (rng.bernoulli(0.3)) {
    s.lease_expiry = sim::SimTime::seconds(rng.uniform(1.0, 1000.0));
  }
  const InvocationParadigm paradigms[] = {
      InvocationParadigm::kAgentAcl, InvocationParadigm::kRemoteInvocation,
      InvocationParadigm::kMessagePassing};
  s.paradigm = paradigms[rng.index(3)];
  return s;
}

class DiscoveryProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  DiscoveryProperty() : ontology_(make_standard_ontology()) {
    common::Rng rng(GetParam());
    for (std::size_t i = 0; i < 40; ++i) {
      corpus_.push_back(random_service(rng, i));
    }
  }
  Ontology ontology_;
  std::vector<ServiceDescription> corpus_;
};

TEST_P(DiscoveryProperty, ServiceWireFormatRoundTrips) {
  for (const auto& service : corpus_) {
    auto parsed = parse_service(serialize(service));
    ASSERT_TRUE(parsed.has_value()) << service.name;
    EXPECT_EQ(parsed->name, service.name);
    EXPECT_EQ(parsed->service_class, service.service_class);
    EXPECT_EQ(parsed->interfaces, service.interfaces);
    EXPECT_EQ(parsed->uuid, service.uuid);
    EXPECT_EQ(parsed->paradigm, service.paradigm);
    EXPECT_EQ(parsed->provider, service.provider);
    EXPECT_EQ(parsed->node, service.node);
    EXPECT_EQ(parsed->lease_expiry, service.lease_expiry);
    ASSERT_EQ(parsed->properties.size(), service.properties.size());
    for (const auto& [key, value] : service.properties) {
      const auto& got = parsed->properties.at(key);
      if (const auto* d = std::get_if<double>(&value)) {
        EXPECT_NEAR(std::get<double>(got), *d, std::abs(*d) * 1e-6 + 1e-9);
      } else {
        EXPECT_EQ(got, value);
      }
    }
  }
}

TEST_P(DiscoveryProperty, MatchListWireFormatRoundTrips) {
  std::vector<Match> matches;
  for (std::size_t i = 0; i < 5 && i < corpus_.size(); ++i) {
    matches.push_back({corpus_[i], 1.0 - 0.1 * double(i)});
  }
  const auto parsed = parse_matches(serialize_matches(matches));
  ASSERT_EQ(parsed.size(), matches.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].service.name, matches[i].service.name);
    EXPECT_NEAR(parsed[i].score, matches[i].score, 1e-9);
  }
}

TEST_P(DiscoveryProperty, SemanticScoresAreSortedAndBounded) {
  SemanticMatcher matcher(ontology_);
  for (const char* cls : {"SensorService", "PrinterService", "Service"}) {
    ServiceRequest request;
    request.desired_class = cls;
    request.max_results = 100;
    const auto matches = matcher.match(corpus_, request);
    for (std::size_t i = 0; i < matches.size(); ++i) {
      EXPECT_GE(matches[i].score, 0.0);
      EXPECT_LE(matches[i].score, 1.0 + 1e-12);
      if (i > 0) {
        EXPECT_GE(matches[i - 1].score, matches[i].score);
      }
    }
  }
}

TEST_P(DiscoveryProperty, StrictMatchesAreSubsetOfFuzzy) {
  SemanticMatcher matcher(ontology_);
  for (const char* cls : {"ColorPrinter", "SensorService", "PdeSolver"}) {
    ServiceRequest fuzzy;
    fuzzy.desired_class = cls;
    fuzzy.max_results = 100;
    ServiceRequest strict = fuzzy;
    strict.require_subsumption = true;
    const auto fuzzy_matches = matcher.match(corpus_, fuzzy);
    const auto strict_matches = matcher.match(corpus_, strict);
    EXPECT_LE(strict_matches.size(), fuzzy_matches.size());
    for (const auto& match : strict_matches) {
      // Every strict match subsumes...
      EXPECT_TRUE(ontology_.is_a(match.service.service_class, cls));
      // ...and appears in the fuzzy set.
      EXPECT_TRUE(std::any_of(fuzzy_matches.begin(), fuzzy_matches.end(),
                              [&](const Match& m) {
                                return m.service.name == match.service.name;
                              }));
    }
  }
}

TEST_P(DiscoveryProperty, MaxResultsHonoredEverywhere) {
  SemanticMatcher semantic(ontology_);
  ExactInterfaceMatcher exact;
  ServiceRequest request;
  request.desired_class = "Service";
  request.max_results = 3;
  EXPECT_LE(semantic.match(corpus_, request).size(), 3u);
  EXPECT_LE(exact.match(corpus_, request).size(), 3u);
}

TEST_P(DiscoveryProperty, HardConstraintsAlwaysRespected) {
  SemanticMatcher matcher(ontology_);
  ServiceRequest request;
  request.desired_class = "Service";
  request.constraints.push_back({"p0", ConstraintOp::kGe, 0.0, true});
  request.max_results = 100;
  for (const auto& match : matcher.match(corpus_, request)) {
    const auto it = match.service.properties.find("p0");
    ASSERT_NE(it, match.service.properties.end());
    ASSERT_TRUE(std::holds_alternative<double>(it->second));
    EXPECT_GE(std::get<double>(it->second), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscoveryProperty,
                         ::testing::Values(1ull, 17ull, 291ull, 5309ull,
                                           86420ull));

}  // namespace
}  // namespace pgrid::discovery
