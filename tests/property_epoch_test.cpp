// Property tests for incremental topology epochs (DESIGN.md S26): with the
// kill switch ON, delta-patched CSR snapshots and scope-invalidated route
// caches must stay bit-identical to the fresh-full-rebuild oracle under
// seeded mobility, churn, battery death, partition-heal and full chaos —
// and the whole discipline must be outcome-identical to the legacy
// global-bump mode on the same seeds.  Local route repair
// (ReliableConfig::repair_depth) rides along with its own splice tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "net/churn.hpp"
#include "net/mobility.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "net/routing.hpp"
#include "sim/chaos.hpp"
#include "sim/simulator.hpp"

namespace pgrid::net {
namespace {

/// Fully independent route oracle: Dijkstra with cost = (hops, distance)
/// re-implemented over the naive neighbour scan, sharing no code with
/// routing.cpp or the epoch machinery.
std::vector<NodeId> oracle_route(const Network& net, NodeId src, NodeId dst) {
  const std::size_t n = net.size();
  if (src >= n || dst >= n || !net.alive(src) || !net.alive(dst)) return {};
  if (src == dst) return {src};
  constexpr std::size_t kFar = std::numeric_limits<std::size_t>::max();
  using Cost = std::pair<std::size_t, double>;
  std::vector<Cost> best(n, {kFar, 0.0});
  std::vector<NodeId> prev(n, kInvalidNode);
  using Entry = std::pair<Cost, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  best[src] = {0, 0.0};
  pq.push({{0, 0.0}, src});
  while (!pq.empty()) {
    auto [cost, at] = pq.top();
    pq.pop();
    if (cost > best[at]) continue;
    if (at == dst) break;
    for (NodeId next : net.neighbors_naive(at)) {
      const double d = distance(net.node(at).pos, net.node(next).pos);
      Cost candidate{cost.first + 1, cost.second + d};
      if (candidate < best[next]) {
        best[next] = candidate;
        prev[next] = at;
        pq.push({candidate, next});
      }
    }
  }
  if (best[dst].first == kFar) return {};
  std::vector<NodeId> route;
  for (NodeId at = dst; at != kInvalidNode; at = prev[at]) {
    route.push_back(at);
    if (at == src) break;
  }
  std::reverse(route.begin(), route.end());
  if (route.front() != src) return {};
  return route;
}

/// Asserts that the (possibly delta-patched) snapshot rows, hop distances
/// and cached routes are all bit-identical to their fresh oracles right now.
void expect_epoch_matches_oracle(const Network& net, common::Rng& pairs,
                                 std::size_t route_probes) {
  const auto& snapshot = net.topology_snapshot();
  for (NodeId id = 0; id < net.size(); ++id) {
    const auto naive = net.neighbors_naive(id);
    const auto row = snapshot.row(id);
    ASSERT_TRUE(std::equal(row.begin(), row.end(), naive.begin(),
                           naive.end()))
        << "patched snapshot row diverged at node " << id;
    const auto dist = snapshot.row_distance(id);
    for (std::size_t k = 0; k < naive.size(); ++k) {
      ASSERT_EQ(dist[k], distance(net.node(id).pos, net.node(naive[k]).pos))
          << "patched hop distance diverged at node " << id;
    }
  }
  for (std::size_t probe = 0; probe < route_probes; ++probe) {
    const auto src = static_cast<NodeId>(pairs.index(net.size()));
    const auto dst = static_cast<NodeId>(pairs.index(net.size()));
    const auto expected = oracle_route(net, src, dst);
    // Twice: the first call may compute-and-fill or revalidate a scoped
    // survivor, the second must hit — both bit-identical to the oracle.
    ASSERT_EQ(cached_shortest_path(net, src, dst), expected)
        << "cached route diverged for " << src << " -> " << dst;
    ASSERT_EQ(cached_shortest_path(net, src, dst), expected)
        << "warm cached route diverged for " << src << " -> " << dst;
  }
}

struct EpochCase {
  std::uint64_t seed;
  std::size_t nodes;
  bool grid_placement;
};

/// Same mixed deployment as the topology property fixture (sensors + wifi
/// base + wired backhaul pair), but with incremental epochs switched on
/// before any traffic runs.
class EpochProperty : public ::testing::TestWithParam<EpochCase> {
 protected:
  EpochProperty() : net_(sim_, common::Rng(GetParam().seed)) {
    net_.set_incremental_topology(true);
    NodeConfig config;
    config.kind = NodeKind::kSensor;
    config.radio = LinkClass::sensor_radio();
    config.battery_j = 0.05;  // small budget: some nodes die mid-run
    common::Rng placement(GetParam().seed ^ 0xabcdef);
    side_ = 15.0 * std::ceil(std::sqrt(double(GetParam().nodes)));
    if (GetParam().grid_placement) {
      ids_ = deploy_grid(net_, GetParam().nodes, side_, side_, config);
    } else {
      ids_ = deploy_random(net_, GetParam().nodes, side_, side_, config,
                           placement);
    }
    NodeConfig base;
    base.kind = NodeKind::kBaseStation;
    base.radio = LinkClass::wifi();
    base.pos = {-5.0, -5.0, 0.0};
    base.unlimited_energy = true;
    base_ = net_.add_node(base);
    NodeConfig grid_machine;
    grid_machine.kind = NodeKind::kGrid;
    grid_machine.radio = LinkClass::wired();
    grid_machine.pos = {-20.0, -20.0, 0.0};
    grid_machine.unlimited_energy = true;
    grid_ = net_.add_node(grid_machine);
    net_.add_wired_link(base_, grid_);
  }

  sim::Simulator sim_;
  Network net_;
  std::vector<NodeId> ids_;
  NodeId base_ = kInvalidNode;
  NodeId grid_ = kInvalidNode;
  double side_ = 0.0;
};

TEST_P(EpochProperty, PatchedSnapshotsMatchOracleUnderMobilityAndChurn) {
  WaypointConfig wconfig;
  wconfig.width_m = side_;
  wconfig.height_m = side_;
  wconfig.horizon = sim::SimTime::seconds(30.0);
  std::vector<NodeId> walkers(ids_.begin(),
                              ids_.begin() + std::min<std::size_t>(
                                                 ids_.size(), 4));
  WaypointMobility mobility(net_, walkers, wconfig,
                            common::Rng(GetParam().seed + 17));
  mobility.start();

  ChurnConfig cconfig;
  cconfig.mean_up = sim::SimTime::seconds(6.0);
  cconfig.mean_down = sim::SimTime::seconds(3.0);
  cconfig.horizon = sim::SimTime::seconds(30.0);
  NodeChurn churn(net_, ids_, cconfig, common::Rng(GetParam().seed + 29));
  churn.start();

  // Background traffic drains batteries, so scoped liveness invalidation
  // (battery death without a topology bump) is exercised too.
  common::Rng traffic(GetParam().seed + 5);
  for (int i = 0; i < 40; ++i) {
    sim_.schedule(sim::SimTime::seconds(0.5 * i), [this, &traffic] {
      const NodeId a = ids_[traffic.index(ids_.size())];
      const NodeId b = ids_[traffic.index(ids_.size())];
      net_.transmit(a, b, 256, [](bool) {});
    });
  }

  common::Rng pairs(GetParam().seed + 99);
  for (int probe = 0; probe < 10; ++probe) {
    sim_.schedule(sim::SimTime::seconds(1.0 + 3.0 * probe), [this, &pairs] {
      expect_epoch_matches_oracle(net_, pairs, 6);
    });
  }
  sim_.run();
  EXPECT_GT(net_.topology_stats().scoped_epochs +
                net_.topology_stats().global_epochs,
            0u)
      << "the epoch machinery never ran";
  EXPECT_GT(mobility.moves(), 0u);
}

TEST_P(EpochProperty, ChaosMobilityChurnStayOracleIdenticalAndExactlyOnce) {
  // The full storm at once: partitions that cut and heal, link blackouts,
  // waypoint mobility and node churn — every class of topology change the
  // scoped invalidation must absorb — while a reliable channel pushes
  // unicasts through the wreckage.  Exactly-once delivery and oracle
  // bit-identity must both hold throughout.
  sim::ChaosEngine engine(net_, GetParam().seed);
  sim::ChaosConfig config;
  config.horizon = sim::SimTime::seconds(40.0);
  config.fault_count = 10;
  config.mix = sim::ChaosMix::partition_storm();
  engine.arm(config);

  WaypointConfig wconfig;
  wconfig.width_m = side_;
  wconfig.height_m = side_;
  wconfig.horizon = sim::SimTime::seconds(40.0);
  std::vector<NodeId> walkers(ids_.begin(),
                              ids_.begin() + std::min<std::size_t>(
                                                 ids_.size(), 4));
  WaypointMobility mobility(net_, walkers, wconfig,
                            common::Rng(GetParam().seed + 41));
  mobility.start();

  ChurnConfig cconfig;
  cconfig.mean_up = sim::SimTime::seconds(8.0);
  cconfig.mean_down = sim::SimTime::seconds(3.0);
  cconfig.horizon = sim::SimTime::seconds(40.0);
  NodeChurn churn(net_, ids_, cconfig, common::Rng(GetParam().seed + 43));
  churn.start();

  ReliableChannel channel(net_, {}, common::Rng(GetParam().seed ^ 0xEE));
  std::map<std::pair<NodeId, std::uint64_t>, int> accepted;
  channel.set_delivery_probe([&](NodeId dst, std::uint64_t seq) {
    ++accepted[{dst, seq}];
  });
  common::Rng traffic(GetParam().seed + 55);
  std::size_t done_count = 0;
  const std::size_t sends = 20;
  for (std::size_t i = 0; i < sends; ++i) {
    sim_.schedule(sim::SimTime::seconds(1.5 * double(i)), [this, &traffic,
                                                          &channel,
                                                          &done_count] {
      const NodeId src = ids_[traffic.index(ids_.size())];
      const NodeId dst = ids_[traffic.index(ids_.size())];
      channel.unicast(src, dst, 128,
                      Budget::until(sim_.now() + sim::SimTime::seconds(8.0)),
                      [&done_count](bool) { ++done_count; });
    });
  }

  common::Rng pairs(GetParam().seed + 7);
  for (int probe = 0; probe < 12; ++probe) {
    sim_.schedule(sim::SimTime::seconds(0.5 + 3.5 * probe), [this, &pairs] {
      expect_epoch_matches_oracle(net_, pairs, 5);
    });
  }
  sim_.run();

  // Exactly-once: `done` fired once per send, and no destination accepted
  // the same payload twice.
  EXPECT_EQ(done_count, sends);
  for (const auto& [key, count] : accepted) {
    EXPECT_EQ(count, 1) << "duplicate delivery at node " << key.first
                        << " seq " << key.second;
  }

  // Post-heal: every fault window has expired; patched structures must
  // converge back to the healed topology.
  ASSERT_TRUE(engine.quiescent());
  common::Rng healed(GetParam().seed + 13);
  expect_epoch_matches_oracle(net_, healed, 10);
}

TEST_P(EpochProperty, OnAndOffModesAreOutcomeIdentical) {
  // The kill switch must not change a single answer — only the work done
  // to produce it.  Replay one seeded scenario (moves, churn, death,
  // mid-run add_node, wired toggles) in both modes and require the full
  // route/snapshot trace to match bit-for-bit.
  struct Trace {
    std::vector<std::vector<NodeId>> routes;
    std::vector<std::uint32_t> offsets;
    std::vector<NodeId> adjacency;
    std::vector<double> hop_distance;
  };
  auto run_mode = [&](bool incremental) {
    sim::Simulator sim;
    Network net(sim, common::Rng(GetParam().seed));
    net.set_incremental_topology(incremental);
    NodeConfig config;
    config.kind = NodeKind::kSensor;
    config.radio = LinkClass::sensor_radio();
    config.battery_j = 0.05;
    common::Rng placement(GetParam().seed ^ 0xabcdef);
    auto ids = GetParam().grid_placement
                   ? deploy_grid(net, GetParam().nodes, side_, side_, config)
                   : deploy_random(net, GetParam().nodes, side_, side_,
                                   config, placement);
    NodeConfig wired;
    wired.kind = NodeKind::kGrid;
    wired.radio = LinkClass::wired();
    wired.pos = {-20.0, -20.0, 0.0};
    wired.unlimited_energy = true;
    const NodeId g0 = net.add_node(wired);
    wired.pos = {-30.0, -20.0, 0.0};
    const NodeId g1 = net.add_node(wired);
    net.add_wired_link(g0, g1);

    Trace trace;
    common::Rng script(GetParam().seed + 77);
    common::Rng pairs(GetParam().seed + 78);
    auto query_batch = [&] {
      for (int q = 0; q < 6; ++q) {
        const auto src = static_cast<NodeId>(pairs.index(net.size()));
        const auto dst = static_cast<NodeId>(pairs.index(net.size()));
        trace.routes.push_back(cached_shortest_path(net, src, dst));
      }
    };
    query_batch();
    for (int step = 0; step < 12; ++step) {
      const NodeId mover = ids[script.index(ids.size())];
      net.move_node(mover, Vec3{script.uniform(0.0, side_),
                                script.uniform(0.0, side_), 0.0});
      const NodeId toggled = ids[script.index(ids.size())];
      net.set_node_up(toggled, (step % 3) != 0);
      if (step == 4) net.set_wired_link_up(g0, g1, false);
      if (step == 7) net.set_wired_link_up(g0, g1, true);
      if (step == 5) {
        NodeConfig late = config;
        late.pos = {side_ * 0.5, side_ * 0.5, 0.0};
        ids.push_back(net.add_node(late));  // global epoch mid-run
      }
      if (step == 8) {
        const NodeId victim = ids.front();
        net.drain_energy(victim,
                         net.node(victim).energy.capacity() + 1.0);
      }
      query_batch();
    }
    const auto& snapshot = net.topology_snapshot();
    trace.offsets = snapshot.offsets;
    trace.adjacency = snapshot.adjacency;
    trace.hop_distance = snapshot.hop_distance;
    return trace;
  };

  const Trace off = run_mode(false);
  const Trace on = run_mode(true);
  ASSERT_EQ(on.routes.size(), off.routes.size());
  for (std::size_t i = 0; i < off.routes.size(); ++i) {
    EXPECT_EQ(on.routes[i], off.routes[i]) << "route trace diverged at " << i;
  }
  EXPECT_EQ(on.offsets, off.offsets);
  EXPECT_EQ(on.adjacency, off.adjacency);
  EXPECT_EQ(on.hop_distance, off.hop_distance);
}

INSTANTIATE_TEST_SUITE_P(
    Epochs, EpochProperty,
    ::testing::Values(EpochCase{1, 25, true}, EpochCase{2, 49, true},
                      EpochCase{3, 36, false}, EpochCase{7, 64, false},
                      EpochCase{11, 80, false}, EpochCase{25, 100, true}),
    [](const ::testing::TestParamInfo<EpochCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nodes) +
             (info.param.grid_placement ? "_grid" : "_random");
    });

// ---------------------------------------------------------------------------
// Scoped-survival mechanics on a hand-built deployment
// ---------------------------------------------------------------------------

TEST(EpochScoping, SingleMovePatchesFewRowsAndKeepsDistantRoutes) {
  sim::Simulator sim;
  Network net(sim, common::Rng(9));
  net.set_incremental_topology(true);
  NodeConfig config;
  config.kind = NodeKind::kSensor;
  config.radio = LinkClass::sensor_radio();
  config.unlimited_energy = true;
  const std::size_t n = 100;
  const double side = 15.0 * 10.0;
  auto ids = deploy_grid(net, n, side, side, config);

  // Prime the cache with a route confined to the first two grid rows —
  // far from the corner we are about to perturb.
  const auto near_route = cached_shortest_path(net, ids[0], ids[15]);
  ASSERT_FALSE(near_route.empty());
  // And one long route that passes near the far corner.
  const auto far_route = cached_shortest_path(net, ids[0], ids[99]);
  ASSERT_FALSE(far_route.empty());

  const auto before = net.topology_stats();
  const auto cache_before = net.route_cache().stats();

  // Nudge the far-corner node a metre: only its 3x3x3 gather block can be
  // affected, so the epoch must patch, not rebuild.
  const Vec3 at = net.node(ids[99]).pos;
  net.move_node(ids[99], Vec3{at.x - 1.0, at.y - 1.0, at.z});
  net.sync_topology_caches();

  const auto after = net.topology_stats();
  const auto cache_after = net.route_cache().stats();
  EXPECT_EQ(after.scoped_epochs, before.scoped_epochs + 1);
  EXPECT_EQ(after.snapshot_patches, before.snapshot_patches + 1);
  EXPECT_EQ(after.snapshot_builds, before.snapshot_builds)
      << "a scoped move must not trigger a full rebuild";
  EXPECT_LE(after.rows_patched - before.rows_patched, n / 2);
  EXPECT_EQ(cache_after.scoped_epochs, cache_before.scoped_epochs + 1);
  EXPECT_GT(cache_after.routes_kept, cache_before.routes_kept)
      << "the near route should survive a far-corner move";

  // Survivors and recomputed routes alike must match the oracle.
  EXPECT_EQ(cached_shortest_path(net, ids[0], ids[15]),
            oracle_route(net, ids[0], ids[15]));
  EXPECT_EQ(cached_shortest_path(net, ids[0], ids[99]),
            oracle_route(net, ids[0], ids[99]));
  common::Rng pairs(31);
  expect_epoch_matches_oracle(net, pairs, 8);
}

// ---------------------------------------------------------------------------
// Local route repair (ReliableConfig::repair_depth)
// ---------------------------------------------------------------------------

/// Line A-B-C-D-E at 20 m pitch (sensor radio: 25 m) plus a bypass node X
/// adjacent to B, C and D only.  Killing C mid-flight forces the hop B->C
/// to fail; with repair_depth >= 2 the channel must splice B-X-D locally
/// instead of rerunning full discovery.
struct RepairRig {
  sim::Simulator sim;
  Network net;
  NodeId a, b, c, d, e, x;

  RepairRig() : net(sim, common::Rng(4)) {
    NodeConfig config;
    config.kind = NodeKind::kSensor;
    config.radio = LinkClass::sensor_radio();
    config.unlimited_energy = true;
    auto add = [&](double px, double py) {
      config.pos = {px, py, 0.0};
      return net.add_node(config);
    };
    a = add(0.0, 0.0);
    b = add(20.0, 0.0);
    c = add(40.0, 0.0);
    d = add(60.0, 0.0);
    e = add(80.0, 0.0);
    x = add(40.0, 12.0);
  }
};

TEST(EpochRepair, SpliceBridgesAroundDeadHopWithoutFullReroute) {
  RepairRig rig;
  ReliableConfig config;
  config.repair_depth = 2;
  ReliableChannel channel(rig.net, config, common::Rng(5));

  // The 4-hop line wins the initial route (shorter geometric distance than
  // the bypass), so the transfer starts through C.
  ASSERT_EQ(cached_shortest_path(rig.net, rig.a, rig.e),
            (std::vector<NodeId>{rig.a, rig.b, rig.c, rig.d, rig.e}));

  bool delivered = false;
  channel.unicast(rig.a, rig.e, 64, Budget::unlimited(),
                  [&](bool ok) { delivered = ok; });
  // Kill C after the route is locked in but before delivery completes.
  rig.sim.schedule(sim::SimTime::seconds(1e-4),
                   [&] { rig.net.set_node_up(rig.c, false); });
  rig.sim.run();

  EXPECT_TRUE(delivered);
  EXPECT_GE(channel.stats().local_repairs, 1u);
}

TEST(EpochRepair, DepthZeroFallsBackToFullRerouteUnchanged) {
  RepairRig rig;
  ReliableChannel channel(rig.net, {}, common::Rng(5));  // repair_depth = 0

  bool delivered = false;
  channel.unicast(rig.a, rig.e, 64, Budget::unlimited(),
                  [&](bool ok) { delivered = ok; });
  rig.sim.schedule(sim::SimTime::seconds(1e-4),
                   [&] { rig.net.set_node_up(rig.c, false); });
  rig.sim.run();

  EXPECT_TRUE(delivered);
  EXPECT_EQ(channel.stats().local_repairs, 0u);
  EXPECT_GE(channel.stats().reroutes, 1u);
}

}  // namespace
}  // namespace pgrid::net
