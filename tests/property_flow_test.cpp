// Property tests for the analytic flow tier (net/flow.hpp): the closed
// forms match the packet tier's actual retry loop by Monte Carlo; flow and
// packet runs of the same seeded deployment stay within the calibration
// band under mobility, churn and partition-heal; the kill switch (no model,
// all-packet fidelity, or an armed chaos engine) is bit-identical to the
// packet-only build; plan caches invalidate on the exact (topology,
// liveness) version discipline; and the sharded flow backhaul is invariant
// under the shard fold.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/runtime.hpp"
#include "core/sharded.hpp"
#include "net/flow.hpp"
#include "net/routing.hpp"
#include "sim/chaos.hpp"

namespace pgrid {
namespace {

// ---------------------------------------------------------------------------
// Closed forms vs the packet tier's actual retry loop.

/// Replays Network::transmit's retry loop exactly: attempts start at 1 and
/// grow on each loss until success or attempts would exceed max_retries.
/// Returns (attempts made, delivered).
std::pair<std::size_t, bool> packet_retry_loop(common::Rng& rng, double loss,
                                               std::size_t max_retries) {
  std::size_t attempts = 1;
  while (rng.bernoulli(loss)) {
    if (attempts > max_retries) return {attempts, false};
    ++attempts;
  }
  return {attempts, true};
}

TEST(FlowClosedForms, HopSuccessMatchesTruncatedGeometric) {
  EXPECT_DOUBLE_EQ(net::FlowModel::hop_success_p(0.0, 3), 1.0);
  EXPECT_DOUBLE_EQ(net::FlowModel::hop_success_p(1.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(net::FlowModel::hop_success_p(0.02, 3),
                   1.0 - std::pow(0.02, 4));
  EXPECT_DOUBLE_EQ(net::FlowModel::hop_success_p(0.5, 0), 0.5);
}

TEST(FlowClosedForms, ExpectedAttemptsMatchesEnumeration) {
  // E[min(Geometric(1-p), m+1)] by direct enumeration over attempt counts.
  for (double p : {0.02, 0.2, 0.5}) {
    for (std::size_t m : {0u, 1u, 3u, 5u}) {
      double expect = 0.0;
      for (std::size_t k = 1; k <= m; ++k) {
        expect += static_cast<double>(k) * std::pow(p, double(k - 1)) *
                  (1.0 - p);
      }
      expect += static_cast<double>(m + 1) * std::pow(p, double(m));
      EXPECT_NEAR(net::FlowModel::expected_attempts(p, m), expect, 1e-12)
          << "p=" << p << " m=" << m;
    }
  }
  EXPECT_DOUBLE_EQ(net::FlowModel::expected_attempts(0.0, 3), 1.0);
  EXPECT_DOUBLE_EQ(net::FlowModel::expected_attempts(1.0, 3), 4.0);
}

TEST(FlowClosedForms, ExpectedAttemptsMatchesPacketLoopMonteCarlo) {
  common::Rng rng(7);
  const double p = 0.2;
  const std::size_t m = 3;
  const std::size_t kTrials = 200000;
  double total = 0.0;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < kTrials; ++i) {
    const auto [attempts, ok] = packet_retry_loop(rng, p, m);
    total += static_cast<double>(attempts);
    delivered += ok ? 1 : 0;
  }
  const double mc_attempts = total / static_cast<double>(kTrials);
  const double mc_success =
      static_cast<double>(delivered) / static_cast<double>(kTrials);
  EXPECT_NEAR(net::FlowModel::expected_attempts(p, m), mc_attempts, 0.01);
  EXPECT_NEAR(net::FlowModel::hop_success_p(p, m), mc_success, 0.005);
}

TEST(FlowClosedForms, ExpectedMaxAttemptsMatchesMonteCarloAndIsMonotone) {
  common::Rng rng(11);
  const double p = 0.2;
  const std::size_t m = 3;
  for (std::size_t n : {1u, 4u, 16u}) {
    const std::size_t kTrials = 50000;
    double total = 0.0;
    for (std::size_t t = 0; t < kTrials; ++t) {
      std::size_t level_max = 0;
      for (std::size_t i = 0; i < n; ++i) {
        level_max = std::max(level_max, packet_retry_loop(rng, p, m).first);
      }
      total += static_cast<double>(level_max);
    }
    EXPECT_NEAR(net::FlowModel::expected_max_attempts(n, p, m),
                total / static_cast<double>(kTrials), 0.02)
        << "n=" << n;
  }
  // n=1 collapses to E[attempts]; more transmitters never finish sooner.
  EXPECT_DOUBLE_EQ(net::FlowModel::expected_max_attempts(1, p, m),
                   net::FlowModel::expected_attempts(p, m));
  double prev = 0.0;
  for (std::size_t n = 1; n <= 64; n *= 2) {
    const double e = net::FlowModel::expected_max_attempts(n, p, m);
    EXPECT_GE(e, prev);
    EXPECT_LE(e, static_cast<double>(m + 1));
    prev = e;
  }
  EXPECT_DOUBLE_EQ(net::FlowModel::expected_max_attempts(0, p, m), 0.0);
}

// ---------------------------------------------------------------------------
// Calibration: flow vs packet on the same seeded deployment, including the
// dynamics that invalidate analytic state (mobility, churn, partition-heal).

core::RuntimeConfig small_config(std::size_t sensors, bool flow) {
  core::RuntimeConfig config;
  config.seed = 42;
  config.sensors.sensor_count = sensors;
  const auto side = static_cast<double>(static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(sensors)))));
  config.sensors.width_m = 15.0 * (side - 1) + 1.0;
  config.sensors.height_m = config.sensors.width_m;
  config.sensors.base_pos = {-5.0, -5.0, 0.0};
  config.sensors.noise_std = 0.0;
  config.advertise_sensor_services = false;
  config.pool_threads = 1;
  config.flow.enabled = flow;
  return config;
}

struct PhaseTotals {
  double energy_j = 0.0;
  std::size_t reports = 0;
  std::size_t expected = 0;
};

/// One collection pair (tree epoch + all-to-base) at the current topology.
PhaseTotals collect_pair(core::PervasiveGridRuntime& rt) {
  PhaseTotals totals;
  for (int kind = 0; kind < 2; ++kind) {
    sensornet::CollectionResult round;
    auto done = [&round](sensornet::CollectionResult r) {
      round = std::move(r);
    };
    if (kind == 0) {
      rt.sensors().collect_tree_aggregate(rt.field(), done);
    } else {
      rt.sensors().collect_all_to_base(rt.field(), done);
    }
    rt.simulator().run();
    totals.energy_j += round.energy_j;
    totals.reports += round.reports;
    totals.expected += round.expected;
  }
  return totals;
}

TEST(FlowCalibration, TracksPacketOracleThroughMobilityChurnAndHeal) {
  core::PervasiveGridRuntime packet(small_config(64, false));
  core::PervasiveGridRuntime flow(small_config(64, true));
  ASSERT_NE(flow.flow_model(), nullptr);
  ASSERT_EQ(packet.flow_model(), nullptr);

  // The same dynamics, applied to both deployments in lockstep.  Each phase
  // mutates topology/liveness and then collects; per-phase totals must stay
  // inside the calibration band (energy +/-10%, success +/-2 points).
  auto phase = [&](const char* label, auto&& mutate) {
    mutate(packet);
    mutate(flow);
    const PhaseTotals po = collect_pair(packet);
    const PhaseTotals fo = collect_pair(flow);
    ASSERT_GT(po.expected, 0u) << label;
    const double p_success = static_cast<double>(po.reports) /
                             static_cast<double>(po.expected);
    const double f_success = static_cast<double>(fo.reports) /
                             static_cast<double>(fo.expected);
    EXPECT_NEAR(f_success, p_success, 0.02) << label;
    EXPECT_NEAR(fo.energy_j, po.energy_j, 0.10 * po.energy_j + 1e-9)
        << label;
  };

  phase("baseline", [](core::PervasiveGridRuntime&) {});
  phase("mobility", [](core::PervasiveGridRuntime& rt) {
    // Nudge a handful of sensors: topology version bumps, routes and flow
    // plans rebuild, connectivity stays intact (moves are small).
    const auto& ids = rt.sensors().sensors();
    for (std::size_t i = 0; i < ids.size(); i += 7) {
      auto pos = rt.network().node(ids[i]).pos;
      pos.x += 2.0;
      rt.network().move_node(ids[i], pos);
    }
  });
  phase("churn-down", [](core::PervasiveGridRuntime& rt) {
    const auto& ids = rt.sensors().sensors();
    rt.network().set_node_up(ids[3], false);
    rt.network().set_node_up(ids[11], false);
  });
  phase("churn-heal", [](core::PervasiveGridRuntime& rt) {
    const auto& ids = rt.sensors().sensors();
    rt.network().set_node_up(ids[3], true);
    rt.network().set_node_up(ids[11], true);
  });
  phase("partition", [](core::PervasiveGridRuntime& rt) {
    // A corner of the floor cut off administratively: every route through
    // the corner re-forms, the flow tier must lose exactly the same corner.
    const auto& ids = rt.sensors().sensors();
    for (std::size_t i = 0; i < 4; ++i) {
      rt.network().set_node_up(ids[ids.size() - 1 - i], false);
    }
  });
  phase("partition-heal", [](core::PervasiveGridRuntime& rt) {
    const auto& ids = rt.sensors().sensors();
    for (std::size_t i = 0; i < 4; ++i) {
      rt.network().set_node_up(ids[ids.size() - 1 - i], true);
    }
  });

  // The flow tier actually served the traffic (this was not a fallback-fest).
  const auto& stats = flow.flow_model()->stats();
  EXPECT_GT(stats.flows, 0u);
  EXPECT_GT(stats.tree_epochs, 0u);
  EXPECT_GT(stats.analytic_hops, 0u);
}

TEST(FlowCalibration, ReplayIsBitIdentical) {
  // Same config, two runs: every flow draw comes from the model's own
  // seeded stream, so outcomes replay exactly.
  auto run = [] {
    core::PervasiveGridRuntime rt(small_config(36, true));
    const PhaseTotals t = collect_pair(rt);
    return std::tuple(t.energy_j, t.reports, rt.network().stats().bytes_sent,
                      rt.flow_model()->stats().expected_attempts);
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Kill-switch identities.

struct PacketWitness {
  net::NetworkStats stats;
  PhaseTotals totals;
};

PacketWitness run_witness(core::RuntimeConfig config, bool with_chaos) {
  core::PervasiveGridRuntime rt(std::move(config));
  std::unique_ptr<sim::ChaosEngine> chaos;
  if (with_chaos) {
    chaos = std::make_unique<sim::ChaosEngine>(rt.network(),
                                               rt.config().seed);
    sim::ChaosConfig cfg;
    cfg.horizon = sim::SimTime::seconds(10.0);
    cfg.fault_count = 6;
    chaos->arm(cfg);
  }
  PacketWitness w;
  w.totals = collect_pair(rt);
  w.stats = rt.network().stats();
  return w;
}

void expect_identical(const PacketWitness& a, const PacketWitness& b,
                      const char* label) {
  EXPECT_EQ(a.stats.transmissions, b.stats.transmissions) << label;
  EXPECT_EQ(a.stats.delivered, b.stats.delivered) << label;
  EXPECT_EQ(a.stats.dropped, b.stats.dropped) << label;
  EXPECT_EQ(a.stats.bytes_sent, b.stats.bytes_sent) << label;
  EXPECT_EQ(a.stats.energy_j, b.stats.energy_j) << label;
  EXPECT_EQ(a.totals.energy_j, b.totals.energy_j) << label;
  EXPECT_EQ(a.totals.reports, b.totals.reports) << label;
}

TEST(FlowKillSwitch, AllPacketFidelityIsBitIdenticalToDisabled) {
  const auto disabled = run_witness(small_config(49, false), false);
  auto config = small_config(49, true);
  config.flow.default_fidelity = net::Fidelity::kPacket;
  const auto all_packet = run_witness(std::move(config), false);
  expect_identical(disabled, all_packet, "all-packet vs disabled");
}

TEST(FlowKillSwitch, ArmedChaosForcesPacketBitIdentically) {
  // An installed FaultInjector forces the deployment to packet fidelity
  // (flow_under_chaos off): the flow-enabled run under chaos must be
  // bit-identical to the disabled run under the identical chaos schedule.
  const auto disabled = run_witness(small_config(49, false), true);
  const auto flowing = run_witness(small_config(49, true), true);
  expect_identical(disabled, flowing, "chaos fallback vs disabled");
}

TEST(FlowKillSwitch, FallbacksAreCounted) {
  core::PervasiveGridRuntime rt(small_config(25, true));
  // Construction traffic (the agent registration envelope) may already have
  // flowed; from here on the armed engine must force everything to packet.
  const net::FlowStats base = rt.flow_model()->stats();
  sim::ChaosEngine chaos(rt.network(), 1);
  sim::ChaosConfig cfg;
  cfg.fault_count = 1;
  chaos.arm(cfg);
  collect_pair(rt);
  const auto& stats = rt.flow_model()->stats();
  EXPECT_EQ(stats.flows, base.flows);
  EXPECT_EQ(stats.tree_epochs, base.tree_epochs);
  EXPECT_GT(stats.packet_fallbacks, base.packet_fallbacks);
}

// ---------------------------------------------------------------------------
// Fidelity selection mechanics.

TEST(FlowFidelity, ForcePacketHoldsAreCountedAndSymmetric) {
  core::PervasiveGridRuntime rt(small_config(16, true));
  net::FlowModel& flow = *rt.flow_model();
  const auto& ids = rt.sensors().sensors();
  const net::NodeId a = ids[0];
  const net::NodeId b = ids[1];
  ASSERT_TRUE(rt.network().connected(a, b));
  EXPECT_TRUE(flow.hop_eligible(a, b));

  flow.force_packet(a, b);
  flow.force_packet(b, a);  // second hold, reversed orientation
  EXPECT_TRUE(flow.packet_forced(a, b));
  EXPECT_TRUE(flow.packet_forced(b, a));
  EXPECT_FALSE(flow.hop_eligible(a, b));
  flow.release_packet(a, b);
  EXPECT_TRUE(flow.packet_forced(a, b)) << "one hold remains";
  flow.release_packet(b, a);
  EXPECT_FALSE(flow.packet_forced(a, b));
  EXPECT_TRUE(flow.hop_eligible(a, b));
}

TEST(FlowFidelity, RegionOverrideGatesEligibility) {
  core::PervasiveGridRuntime rt(small_config(16, true));
  net::FlowModel& flow = *rt.flow_model();
  const auto& ids = rt.sensors().sensors();
  // No ShardMap installed: every node sits in kInvalidRegion, so the
  // override for that region flips the whole deployment.
  EXPECT_EQ(flow.region_fidelity(net::kInvalidRegion), net::Fidelity::kFlow);
  flow.set_region_fidelity(net::kInvalidRegion, net::Fidelity::kPacket);
  EXPECT_FALSE(flow.hop_eligible(ids[0], ids[1]));
  flow.set_region_fidelity(net::kInvalidRegion, net::Fidelity::kFlow);
  EXPECT_TRUE(flow.hop_eligible(ids[0], ids[1]));
}

TEST(FlowFidelity, CongestionShareScalesWithActiveFlows) {
  auto config = small_config(36, true);
  config.flow.congestion_alpha = 0.5;
  core::PervasiveGridRuntime rt(config);
  net::FlowModel& flow = *rt.flow_model();
  const net::SinkTree& tree = rt.sensors().tree();
  // Deepest sensor's route to the sink: every flow sent along it occupies
  // its links until the analytic completion event fires.
  net::NodeId deep = rt.sensors().sensors()[0];
  for (net::NodeId id : rt.sensors().sensors()) {
    if (tree.contains(id) && tree.depth(id) > tree.depth(deep)) deep = id;
  }
  const auto route = tree.route_to_sink(deep);
  ASSERT_GE(route.size(), 2u);
  EXPECT_DOUBLE_EQ(flow.congestion_factor(route[0], route[1]), 1.0);

  ASSERT_TRUE(flow.route_eligible(route));
  flow.send_flow(route, 64, [](bool, std::size_t) {});
  EXPECT_DOUBLE_EQ(flow.congestion_factor(route[0], route[1]), 1.5)
      << "one active flow at alpha=0.5";
  flow.send_flow(route, 64, [](bool, std::size_t) {});
  EXPECT_DOUBLE_EQ(flow.congestion_factor(route[0], route[1]), 2.0);
  rt.simulator().run();
  EXPECT_DOUBLE_EQ(flow.congestion_factor(route[0], route[1]), 1.0)
      << "links drain when completions fire";
}

// ---------------------------------------------------------------------------
// Plan cache: the RouteCache version discipline, exactly.

TEST(FlowPlans, CacheHitsAndVersionInvalidation) {
  core::PervasiveGridRuntime rt(small_config(36, true));
  net::FlowModel& flow = *rt.flow_model();
  const auto route = rt.sensors().tree().route_to_sink(
      rt.sensors().sensors().back());
  ASSERT_GE(route.size(), 2u);

  // Construction traffic already planned a flow at a pre-tree topology
  // version, so every expectation below is a delta from this baseline.
  const net::FlowStats base = flow.stats();
  flow.send_flow(route, 32, [](bool, std::size_t) {});
  rt.simulator().run();
  EXPECT_EQ(flow.stats().plan_misses, base.plan_misses + 1);
  flow.send_flow(route, 32, [](bool, std::size_t) {});
  rt.simulator().run();
  EXPECT_EQ(flow.stats().plan_hits, base.plan_hits + 1);

  // Mobility bumps the topology version: the next flow must re-plan.
  const net::FlowStats settled = flow.stats();
  auto pos = rt.network().node(route[0]).pos;
  pos.x += 1.0;
  rt.network().move_node(route[0], pos);
  flow.send_flow(route, 32, [](bool, std::size_t) {});
  rt.simulator().run();
  EXPECT_EQ(flow.stats().plan_invalidations,
            settled.plan_invalidations + 1);
  EXPECT_EQ(flow.stats().plan_misses, settled.plan_misses + 1);

  // Battery death moves the liveness version without touching topology.
  const net::NodeId victim = rt.sensors().sensors()[2];
  const auto before = rt.network().liveness_version();
  rt.network().drain_energy(victim, 1e9);
  ASSERT_GT(rt.network().liveness_version(), before);
  flow.send_flow(route, 32, [](bool, std::size_t) {});
  rt.simulator().run();
  EXPECT_EQ(flow.stats().plan_invalidations,
            settled.plan_invalidations + 2);
}

TEST(FlowPlans, BrokenRouteFailsAtTheBrokenHopWithoutCharge) {
  core::PervasiveGridRuntime rt(small_config(36, true));
  net::FlowModel& flow = *rt.flow_model();
  const auto route = rt.sensors().tree().route_to_sink(
      rt.sensors().sensors().back());
  ASSERT_GE(route.size(), 3u) << "need an interior hop to break";

  rt.network().set_node_up(route[1], false);
  const double energy_before = rt.network().stats().energy_j;
  bool delivered = true;
  std::size_t completed = 999;
  ASSERT_TRUE(flow.route_eligible(route))
      << "eligibility is about fidelity, not liveness";
  flow.send_flow(route, 32, [&](bool ok, std::size_t hops) {
    delivered = ok;
    completed = hops;
  });
  rt.simulator().run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(completed, 0u) << "first hop targets the downed node";
  EXPECT_EQ(flow.stats().failed, 1u);
  EXPECT_EQ(rt.network().stats().energy_j, energy_before)
      << "no hop was serviceable, so nothing may be charged";
}

// ---------------------------------------------------------------------------
// Sharded flow backhaul: barrier-exchange completions, shard-fold invariant.

core::ShardedDeploymentConfig city_config(std::size_t regions,
                                          std::size_t shards, bool flow) {
  core::ShardedDeploymentConfig config;
  config.base = small_config(16, flow);
  config.base.sharding.shards = shards;
  config.base.sharding.window = sim::SimTime::milliseconds(5);
  config.regions = regions;
  config.region_spacing_m = 400.0;
  return config;
}

struct BackhaulWitness {
  std::vector<net::NetworkStats> stats;
  core::QueryOutcome remote;
  bool transfer_ok = false;
  std::uint64_t digest = 0;
};

BackhaulWitness run_backhaul(std::size_t shards) {
  core::ShardedDeployment dep(city_config(2, shards, true));
  BackhaulWitness w;
  dep.submit_remote(0, 1, sim::SimTime::milliseconds(1),
                    "SELECT AVG(temp) FROM sensors",
                    [&w](core::QueryOutcome o) { w.remote = std::move(o); });
  dep.transfer_remote(1, 0, sim::SimTime::milliseconds(2), 4096,
                      [&w](bool ok) { w.transfer_ok = ok; });
  dep.run();
  for (std::size_t r = 0; r < 2; ++r) {
    w.stats.push_back(dep.region(r).network().stats());
  }
  w.digest = dep.order_digest();
  return w;
}

TEST(ShardedFlow, BackhaulFlowsAreCountedOncePerTransfer) {
  const auto w = run_backhaul(1);
  ASSERT_TRUE(w.remote.ok) << w.remote.error;
  EXPECT_TRUE(w.transfer_ok);
  // Region 0 sent the forwarded query, region 1 sent the bulk transfer:
  // exactly one cross-region completion booked at each sender (regions are
  // 400 m apart, so no radio frame ever crosses the boundary).
  EXPECT_EQ(w.stats[0].cross_region_frames, 1u);
  EXPECT_EQ(w.stats[1].cross_region_frames, 1u);
}

TEST(ShardedFlow, BackhaulInvariantUnderShardFold) {
  const auto one = run_backhaul(1);
  const auto two = run_backhaul(2);
  ASSERT_TRUE(one.remote.ok);
  ASSERT_TRUE(two.remote.ok);
  EXPECT_EQ(one.remote.actual.value, two.remote.actual.value);
  EXPECT_EQ(one.remote.actual.energy_j, two.remote.actual.energy_j);
  EXPECT_EQ(one.transfer_ok, two.transfer_ok);
  EXPECT_EQ(one.digest, two.digest);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(one.stats[r].transmissions, two.stats[r].transmissions);
    EXPECT_EQ(one.stats[r].bytes_sent, two.stats[r].bytes_sent);
    EXPECT_EQ(one.stats[r].energy_j, two.stats[r].energy_j);
    EXPECT_EQ(one.stats[r].cross_region_frames,
              two.stats[r].cross_region_frames);
  }
}

TEST(ShardedFlow, SubmitRemoteKillSwitchKeepsLegacyTimeline) {
  // Flow disabled: submit_remote must reproduce the PR 6 timeline — no
  // cross-region bookkeeping, arrival exactly backhaul_latency later.
  core::ShardedDeployment dep(city_config(2, 1, false));
  core::QueryOutcome remote;
  dep.submit_remote(0, 1, sim::SimTime::milliseconds(1),
                    "SELECT AVG(temp) FROM sensors",
                    [&remote](core::QueryOutcome o) { remote = std::move(o); });
  dep.run();
  ASSERT_TRUE(remote.ok) << remote.error;
  EXPECT_EQ(dep.region(0).network().stats().cross_region_frames, 0u);
}

}  // namespace
}  // namespace pgrid
