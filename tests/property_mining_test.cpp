// Property tests for the stream-mining substrate, swept over dimensions
// and seeds: exact Fourier algebra (Parseval, reconstruction, linearity)
// and learner invariants must hold for every instance.
#include <gtest/gtest.h>

#include <cmath>

#include "mining/ensemble.hpp"

namespace pgrid::mining {
namespace {

struct MiningCase {
  std::size_t dimensions;
  std::uint64_t seed;
};

class MiningProperty : public ::testing::TestWithParam<MiningCase> {
 protected:
  BooleanDecisionTree trained_tree(std::size_t max_depth = 0) const {
    StreamGenerator gen(GetParam().dimensions,
                        common::Rng(GetParam().seed));
    BooleanDecisionTree tree;
    tree.train(gen.next_window(400), GetParam().dimensions, max_depth);
    return tree;
  }

  std::vector<double> spectrum_of(const BooleanDecisionTree& tree) const {
    return full_spectrum(
        as_sign([&tree](const std::vector<bool>& x) {
          return tree.predict(x);
        }),
        GetParam().dimensions);
  }
};

TEST_P(MiningProperty, ParsevalIsExact) {
  const auto spectrum = spectrum_of(trained_tree());
  double energy = 0.0;
  for (double w : spectrum) energy += w * w;
  EXPECT_NEAR(energy, 1.0, 1e-9) << "total energy of a +/-1 function is 1";
}

TEST_P(MiningProperty, FullSpectrumReconstructsTheTree) {
  const auto tree = trained_tree();
  const auto spectrum = spectrum_of(tree);
  std::vector<Coefficient> everything;
  for (std::size_t z = 0; z < spectrum.size(); ++z) {
    everything.push_back({static_cast<std::uint32_t>(z), spectrum[z]});
  }
  SpectrumClassifier reconstructed(everything);
  const std::size_t d = GetParam().dimensions;
  std::vector<bool> features(d);
  for (std::size_t x = 0; x < (std::size_t{1} << d); ++x) {
    for (std::size_t bit = 0; bit < d; ++bit) features[bit] = (x >> bit) & 1u;
    ASSERT_EQ(reconstructed.predict(features), tree.predict(features)) << x;
  }
}

TEST_P(MiningProperty, DominantEnergyIsMonotoneInBudget) {
  const auto spectrum = spectrum_of(trained_tree(4));
  double previous = -1.0;
  for (std::size_t k : {1, 2, 4, 8, 16, 32}) {
    const double energy = captured_energy(dominant(spectrum, k));
    EXPECT_GE(energy, previous - 1e-12);
    EXPECT_LE(energy, 1.0 + 1e-9);
    previous = energy;
  }
}

TEST_P(MiningProperty, SpectrumLinearityUnderEnsembleAveraging) {
  // The pipeline's core identity: spectrum(average of functions) equals
  // average of spectra.  Build two trees, average spectra, compare against
  // the pointwise-averaged function's transform.
  StreamGenerator gen(GetParam().dimensions, common::Rng(GetParam().seed));
  BooleanDecisionTree t1;
  t1.train(gen.next_window(300), GetParam().dimensions);
  BooleanDecisionTree t2;
  t2.train(gen.next_window(300), GetParam().dimensions);

  const auto s1 = spectrum_of(t1);
  const auto s2 = spectrum_of(t2);
  const auto averaged = average_spectra({s1, s2});

  // Transform of the averaged +/-1 functions (values in {-1, 0, +1}).
  const auto direct = full_spectrum(
      [&](const std::vector<bool>& x) {
        return (t1.predict(x) ? 1 : -1) + (t2.predict(x) ? 1 : -1);
      },
      GetParam().dimensions);
  for (std::size_t z = 0; z < averaged.size(); ++z) {
    EXPECT_NEAR(averaged[z], direct[z] / 2.0, 1e-9) << z;
  }
}

TEST_P(MiningProperty, TrainingIsDeterministic) {
  const auto a = trained_tree();
  const auto b = trained_tree();
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.depth(), b.depth());
  StreamGenerator probe(GetParam().dimensions,
                        common::Rng(GetParam().seed + 1));
  for (const auto& instance : probe.next_window(200)) {
    EXPECT_EQ(a.predict(instance.features), b.predict(instance.features));
  }
}

TEST_P(MiningProperty, DepthCapBoundsSpectralOrder) {
  // A depth-k tree's decision depends on at most k attributes per path;
  // its Fourier support lies on coefficients of order <= k.
  const std::size_t cap = 3;
  const auto tree = trained_tree(cap);
  const auto spectrum = spectrum_of(tree);
  for (std::size_t z = 0; z < spectrum.size(); ++z) {
    if (order_of(static_cast<std::uint32_t>(z)) > cap) {
      EXPECT_NEAR(spectrum[z], 0.0, 1e-9)
          << "order-" << order_of(static_cast<std::uint32_t>(z))
          << " coefficient must vanish for a depth-" << cap << " tree";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSeeds, MiningProperty,
    ::testing::Values(MiningCase{4, 1}, MiningCase{6, 2}, MiningCase{8, 3},
                      MiningCase{8, 77}, MiningCase{10, 5}),
    [](const ::testing::TestParamInfo<MiningCase>& info) {
      return "d" + std::to_string(info.param.dimensions) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace pgrid::mining
