// Property tests for the network substrate: invariants that must hold for
// every topology, seed and deployment shape (parameterized sweeps).
#include <gtest/gtest.h>

#include <queue>
#include <tuple>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "sim/simulator.hpp"

namespace pgrid::net {
namespace {

struct NetCase {
  std::uint64_t seed;
  std::size_t nodes;
  bool grid_placement;
};

class NetProperty : public ::testing::TestWithParam<NetCase> {
 protected:
  NetProperty() : net_(sim_, common::Rng(GetParam().seed)) {
    NodeConfig config;
    config.kind = NodeKind::kSensor;
    config.radio = LinkClass::sensor_radio();
    config.battery_j = 2.0;
    common::Rng placement(GetParam().seed ^ 0xabcdef);
    const double side =
        15.0 * std::ceil(std::sqrt(double(GetParam().nodes)));
    if (GetParam().grid_placement) {
      ids_ = deploy_grid(net_, GetParam().nodes, side, side, config);
    } else {
      ids_ = deploy_random(net_, GetParam().nodes, side, side, config,
                           placement);
    }
  }

  /// Independent BFS hop distances from `src` (ground truth for routing).
  std::vector<std::size_t> bfs_hops(NodeId src) {
    std::vector<std::size_t> dist(net_.size(), SIZE_MAX);
    std::queue<NodeId> frontier;
    dist[src] = 0;
    frontier.push(src);
    while (!frontier.empty()) {
      const NodeId at = frontier.front();
      frontier.pop();
      for (NodeId next : net_.neighbors(at)) {
        if (dist[next] == SIZE_MAX) {
          dist[next] = dist[at] + 1;
          frontier.push(next);
        }
      }
    }
    return dist;
  }

  sim::Simulator sim_;
  Network net_;
  std::vector<NodeId> ids_;
};

TEST_P(NetProperty, EnergyLedgerBalances) {
  // Global stats energy must equal the sum of per-node battery draws.
  common::Rng traffic(GetParam().seed + 1);
  for (int i = 0; i < 50; ++i) {
    const NodeId a = ids_[traffic.index(ids_.size())];
    const NodeId b = ids_[traffic.index(ids_.size())];
    if (a == b) continue;
    net_.transmit(a, b, 64 + traffic.index(512), [](bool) {});
  }
  sim_.run();
  double per_node = 0.0;
  for (auto id : ids_) per_node += net_.node(id).energy.consumed();
  EXPECT_NEAR(net_.stats().energy_j, per_node, 1e-12);
  EXPECT_NEAR(net_.battery_energy_consumed(), per_node, 1e-12);
}

TEST_P(NetProperty, FloodReachesExactlyTheConnectedComponent) {
  const NodeId src = ids_.front();
  const auto dist = bfs_hops(src);
  std::size_t component = 0;
  for (auto id : ids_) {
    if (dist[id] != SIZE_MAX) ++component;
  }
  std::size_t reached = 0;
  net_.flood(src, 32, nullptr, [&](std::size_t r) { reached = r; });
  sim_.run();
  EXPECT_EQ(reached, component);
}

TEST_P(NetProperty, ShortestPathIsHopOptimalAndValid) {
  const NodeId src = ids_.front();
  const auto dist = bfs_hops(src);
  for (auto dst : ids_) {
    const auto route = shortest_path(net_, src, dst);
    if (dist[dst] == SIZE_MAX) {
      EXPECT_TRUE(route.empty());
      continue;
    }
    ASSERT_FALSE(route.empty());
    EXPECT_EQ(route.front(), src);
    EXPECT_EQ(route.back(), dst);
    EXPECT_EQ(route.size(), dist[dst] + 1) << "hop-optimality";
    for (std::size_t i = 1; i < route.size(); ++i) {
      EXPECT_TRUE(net_.connected(route[i - 1], route[i]))
          << "consecutive hops must share a link";
    }
  }
}

TEST_P(NetProperty, SinkTreeRoutesAreConsistent) {
  const NodeId sink = ids_.front();
  SinkTree tree(net_, sink);
  const auto dist = bfs_hops(sink);
  for (auto id : ids_) {
    if (dist[id] == SIZE_MAX) {
      EXPECT_FALSE(tree.contains(id));
      continue;
    }
    ASSERT_TRUE(tree.contains(id));
    EXPECT_EQ(tree.depth(id), dist[id]) << "BFS tree depth = hop distance";
    const auto route = tree.route_to_sink(id);
    EXPECT_EQ(route.size(), dist[id] + 1);
  }
}

TEST_P(NetProperty, TransmissionsAreDeterministicPerSeed) {
  auto run_traffic = [](const NetCase& param) {
    sim::Simulator sim;
    Network net(sim, common::Rng(param.seed));
    NodeConfig config;
    config.radio = LinkClass::sensor_radio();
    common::Rng placement(param.seed ^ 0xabcdef);
    const double side = 15.0 * std::ceil(std::sqrt(double(param.nodes)));
    auto ids = param.grid_placement
                   ? deploy_grid(net, param.nodes, side, side, config)
                   : deploy_random(net, param.nodes, side, side, config,
                                   placement);
    common::Rng traffic(param.seed + 1);
    for (int i = 0; i < 30; ++i) {
      net.transmit(ids[traffic.index(ids.size())],
                   ids[traffic.index(ids.size())], 100, [](bool) {});
    }
    sim.run();
    return std::make_tuple(net.stats().transmissions, net.stats().delivered,
                           net.stats().energy_j);
  };
  EXPECT_EQ(run_traffic(GetParam()), run_traffic(GetParam()));
}

TEST_P(NetProperty, NeighborRelationIsSymmetric) {
  for (auto a : ids_) {
    for (auto b : net_.neighbors(a)) {
      const auto back = net_.neighbors(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end())
          << a << " <-> " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, NetProperty,
    ::testing::Values(NetCase{1, 16, true}, NetCase{2, 49, true},
                      NetCase{3, 100, true}, NetCase{7, 30, false},
                      NetCase{11, 60, false}, NetCase{13, 120, false}),
    [](const ::testing::TestParamInfo<NetCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nodes) +
             (info.param.grid_placement ? "_grid" : "_random");
    });

}  // namespace
}  // namespace pgrid::net
