// Property tests for dynamic partitioning: estimator sanity across the
// whole (query class x model x size) lattice, executor invariants, and
// decision consistency — parameterized sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/runtime.hpp"
#include "partition/cost_model.hpp"
#include "partition/executor.hpp"

namespace pgrid::partition {
namespace {

// ---------------------------------------------------------------------------
// Estimator lattice properties
// ---------------------------------------------------------------------------

struct EstimatorCase {
  std::size_t sensors;
  query::QueryClass inner;
};

class EstimatorProperty : public ::testing::TestWithParam<EstimatorCase> {
 protected:
  NetworkProfile profile() const {
    NetworkProfile p;
    p.sensor_count = GetParam().sensors;
    p.avg_depth_hops = std::sqrt(double(GetParam().sensors)) * 0.7;
    p.max_depth_hops = p.avg_depth_hops * 2.0;
    p.cluster_count = static_cast<std::size_t>(
        std::ceil(std::sqrt(double(GetParam().sensors))));
    p.grid_flops_per_s = 2e9;
    p.query_compute_ops =
        GetParam().inner == query::QueryClass::kComplex ? 1e8 : 100.0;
    return p;
  }
};

TEST_P(EstimatorProperty, SupportedModelsGiveFiniteEstimates) {
  const auto p = profile();
  for (auto model : all_models()) {
    const auto estimate = estimate_cost(p, GetParam().inner, model);
    if (model_supports(model, GetParam().inner)) {
      EXPECT_TRUE(std::isfinite(estimate.energy_j)) << to_string(model);
      EXPECT_TRUE(std::isfinite(estimate.response_s)) << to_string(model);
      EXPECT_GE(estimate.energy_j, 0.0);
      EXPECT_GT(estimate.response_s, 0.0);
      EXPECT_GT(estimate.accuracy, 0.0);
      EXPECT_LE(estimate.accuracy, 1.0);
    } else {
      EXPECT_TRUE(std::isinf(estimate.energy_j)) << to_string(model);
    }
  }
}

TEST_P(EstimatorProperty, EstimatesMonotoneInNetworkSize) {
  auto small = profile();
  auto big = profile();
  big.sensor_count *= 4;
  big.avg_depth_hops *= 2;
  big.max_depth_hops *= 2;
  big.cluster_count *= 2;
  for (auto model : candidates_for(GetParam().inner)) {
    if (GetParam().inner == query::QueryClass::kSimple) continue;  // 1 sensor
    const auto e_small = estimate_cost(small, GetParam().inner, model);
    const auto e_big = estimate_cost(big, GetParam().inner, model);
    EXPECT_GT(e_big.energy_j, e_small.energy_j) << to_string(model);
    EXPECT_GT(e_big.data_bytes, e_small.data_bytes) << to_string(model);
  }
}

TEST_P(EstimatorProperty, BestModelIsArgminOfObjective) {
  const auto p = profile();
  for (auto metric :
       {query::CostMetric::kEnergy, query::CostMetric::kTime,
        query::CostMetric::kAccuracy, query::CostMetric::kNone}) {
    const auto best = best_model(p, GetParam().inner, metric);
    const double best_score =
        objective(estimate_cost(p, GetParam().inner, best), metric);
    for (auto model : candidates_for(GetParam().inner)) {
      EXPECT_LE(best_score,
                objective(estimate_cost(p, GetParam().inner, model), metric) +
                    1e-12)
          << to_string(model) << " beats chosen " << to_string(best);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, EstimatorProperty,
    ::testing::Values(EstimatorCase{25, query::QueryClass::kSimple},
                      EstimatorCase{25, query::QueryClass::kAggregate},
                      EstimatorCase{25, query::QueryClass::kComplex},
                      EstimatorCase{100, query::QueryClass::kAggregate},
                      EstimatorCase{100, query::QueryClass::kComplex},
                      EstimatorCase{400, query::QueryClass::kAggregate},
                      EstimatorCase{400, query::QueryClass::kComplex}),
    [](const ::testing::TestParamInfo<EstimatorCase>& info) {
      return "n" + std::to_string(info.param.sensors) + "_" +
             query::to_string(info.param.inner);
    });

// ---------------------------------------------------------------------------
// Executor properties on a live runtime, per model
// ---------------------------------------------------------------------------

struct ExecCase {
  const char* query;
  SolutionModel model;
};

class ExecutorProperty : public ::testing::TestWithParam<ExecCase> {
 protected:
  ExecutorProperty() {
    core::RuntimeConfig config;
    config.sensors.sensor_count = 49;
    config.sensors.width_m = 91.0;
    config.sensors.height_m = 91.0;
    config.sensors.base_pos = {-5, -5, 0};
    config.sensors.noise_std = 0.0;
    config.pde_resolution = 13;
    config.advertise_sensor_services = false;
    runtime_ = std::make_unique<core::PervasiveGridRuntime>(config);
    sensornet::FireSource fire;
    fire.pos = {60, 60, 0};
    fire.start = sim::SimTime::seconds(-3600.0);
    fire.spread_m_per_s = 0.0;
    runtime_->field().ignite(fire);
  }
  std::unique_ptr<core::PervasiveGridRuntime> runtime_;
};

TEST_P(ExecutorProperty, MeasurementsAreWellFormed) {
  const auto outcome =
      runtime_->submit_and_run(GetParam().query, GetParam().model);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.model, GetParam().model);
  EXPECT_GT(outcome.actual.response_s, 0.0);
  EXPECT_GE(outcome.actual.energy_j, 0.0);
  EXPECT_GT(outcome.actual.data_bytes, 0u);
  EXPECT_GT(outcome.actual.accuracy, 0.0);
  EXPECT_LE(outcome.actual.accuracy, 1.0);
  EXPECT_GE(outcome.handheld_response_s, outcome.actual.response_s);
  // The answer must lie within the physical range of the field.
  EXPECT_GE(outcome.actual.value, 15.0);
  EXPECT_LE(outcome.actual.value, 700.0);
}

TEST_P(ExecutorProperty, EstimateRanksWithinFactorTen) {
  const auto outcome =
      runtime_->submit_and_run(GetParam().query, GetParam().model);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  if (outcome.actual.energy_j > 0 && outcome.estimate.energy_j > 0) {
    const double ratio = outcome.estimate.energy_j / outcome.actual.energy_j;
    EXPECT_GT(ratio, 0.1) << "estimate uselessly low";
    EXPECT_LT(ratio, 10.0) << "estimate uselessly high";
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueriesAndModels, ExecutorProperty,
    ::testing::Values(
        ExecCase{"SELECT temp FROM sensors WHERE sensor = 24",
                 SolutionModel::kAllToBase},
        ExecCase{"SELECT AVG(temp) FROM sensors",
                 SolutionModel::kAllToBase},
        ExecCase{"SELECT AVG(temp) FROM sensors",
                 SolutionModel::kTreeAggregate},
        ExecCase{"SELECT AVG(temp) FROM sensors",
                 SolutionModel::kClusterAggregate},
        ExecCase{"SELECT AVG(temp) FROM sensors",
                 SolutionModel::kGridOffload},
        ExecCase{"SELECT MAX(temp) FROM sensors",
                 SolutionModel::kTreeAggregate},
        ExecCase{"SELECT TEMP_DISTRIBUTION(temp) FROM sensors",
                 SolutionModel::kAllToBase},
        ExecCase{"SELECT TEMP_DISTRIBUTION(temp) FROM sensors",
                 SolutionModel::kGridOffload},
        ExecCase{"SELECT TEMP_DISTRIBUTION(temp) FROM sensors",
                 SolutionModel::kHandheldLocal},
        ExecCase{"SELECT TEMP_DISTRIBUTION(temp) FROM sensors",
                 SolutionModel::kHybridRegionGrid}),
    [](const ::testing::TestParamInfo<ExecCase>& info) {
      std::string model = to_string(info.param.model);
      std::replace(model.begin(), model.end(), '-', '_');
      return "case" + std::to_string(info.index) + "_" + model;
    });

}  // namespace
}  // namespace pgrid::partition
