// Property tests for the end-to-end reliability layer (PR 5):
//
//  1. Determinism: the channel is a pure function of (topology, config,
//     seed) — replaying a seed reproduces bit-identical retransmit
//     schedules, delivery timestamps, ReliableStats, and QueryOutcome.
//  2. Exactly-once: under lossy-mesh chaos (drops, duplicates, lost ACKs)
//     the ACK channel delivers every payload to its destination at most
//     once, and `done` fires exactly once per send.
//  3. Breakers: an open breaker never admits a send until the half-open
//     probe succeeds; failed probes escalate the cooling period.
//
// Budget semantics and window queueing ride along as unit properties.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/runtime.hpp"
#include "net/network.hpp"
#include "net/reliable.hpp"
#include "sim/chaos.hpp"
#include "sim/invariants.hpp"
#include "sim/simulator.hpp"

namespace pgrid {
namespace {

using net::Budget;
using net::BreakerRegistry;
using net::BreakerState;
using net::NodeId;

// ---------------------------------------------------------------------------
// Budget semantics
// ---------------------------------------------------------------------------

TEST(Budget, UnlimitedNeverExpires) {
  const Budget b = Budget::unlimited();
  EXPECT_FALSE(b.bounded());
  EXPECT_FALSE(b.expired(sim::SimTime::seconds(1e9)));
  EXPECT_EQ(b.clamp(sim::SimTime::zero(), sim::SimTime::seconds(5.0)),
            sim::SimTime::seconds(5.0));
}

TEST(Budget, BoundedExpiresAtDeadlineExactly) {
  const Budget b = Budget::until(sim::SimTime::seconds(10.0));
  EXPECT_TRUE(b.bounded());
  EXPECT_FALSE(b.expired(sim::SimTime::seconds(9.999)));
  EXPECT_TRUE(b.expired(sim::SimTime::seconds(10.0)));
  EXPECT_EQ(b.remaining(sim::SimTime::seconds(4.0)),
            sim::SimTime::seconds(6.0));
  EXPECT_EQ(b.remaining(sim::SimTime::seconds(11.0)), sim::SimTime::zero());
}

TEST(Budget, TightenedPicksEarlierDeadlineAndClampCapsTimeouts) {
  const Budget early = Budget::until(sim::SimTime::seconds(5.0));
  const Budget late = Budget::until(sim::SimTime::seconds(50.0));
  EXPECT_EQ(early.tightened(late).deadline, early.deadline);
  EXPECT_EQ(late.tightened(early).deadline, early.deadline);
  EXPECT_EQ(early.tightened(Budget::unlimited()).deadline, early.deadline);
  // A 30 s protocol timeout issued at t=3 s against a t=5 s deadline must
  // shrink to the 2 s remaining.
  EXPECT_EQ(early.clamp(sim::SimTime::seconds(3.0), sim::SimTime::seconds(30.0)),
            sim::SimTime::seconds(2.0));
}

// ---------------------------------------------------------------------------
// Circuit breakers (property 3, unit level)
// ---------------------------------------------------------------------------

net::BreakerConfig fast_breaker() {
  net::BreakerConfig config;
  config.failure_threshold = 3;
  config.open_for = sim::SimTime::seconds(4.0);
  config.open_backoff = 2.0;
  config.max_open_for = sim::SimTime::seconds(32.0);
  return config;
}

TEST(Breaker, TripsOpenAtThresholdAndNeverAdmitsWhileCooling) {
  BreakerRegistry<int> reg(fast_breaker());
  const sim::SimTime t0 = sim::SimTime::seconds(1.0);
  EXPECT_TRUE(reg.admit(7, t0));
  reg.record_failure(7, t0);
  reg.record_failure(7, t0);
  EXPECT_EQ(reg.state(7, t0), BreakerState::kClosed) << "below threshold";
  reg.record_failure(7, t0);
  EXPECT_EQ(reg.state(7, t0), BreakerState::kOpen);
  EXPECT_EQ(reg.stats().opens, 1u);

  // The ISSUE property: while open, every admit() short-circuits until the
  // cooling period elapses — no traffic reaches the resource.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(reg.admit(7, t0 + sim::SimTime::seconds(0.3 * i)));
  }
  EXPECT_EQ(reg.stats().short_circuits, 10u);
  EXPECT_EQ(reg.stats().probes, 0u);
  EXPECT_EQ(reg.open_count(t0), 1u);
}

TEST(Breaker, HalfOpenGrantsSingleProbeAndSuccessCloses) {
  BreakerRegistry<int> reg(fast_breaker());
  const sim::SimTime t0 = sim::SimTime::zero();
  for (int i = 0; i < 3; ++i) reg.record_failure(7, t0);
  const sim::SimTime healed = t0 + sim::SimTime::seconds(4.0);
  EXPECT_EQ(reg.state(7, healed), BreakerState::kHalfOpen);

  // Exactly one probe: the first admit wins, concurrent admits still
  // short-circuit until the probe resolves.
  EXPECT_TRUE(reg.admit(7, healed));
  EXPECT_FALSE(reg.admit(7, healed));
  EXPECT_FALSE(reg.admit(7, healed + sim::SimTime::seconds(1.0)));
  EXPECT_EQ(reg.stats().probes, 1u);
  EXPECT_EQ(reg.stats().short_circuits, 2u);

  reg.record_success(7, healed + sim::SimTime::seconds(1.0));
  EXPECT_EQ(reg.stats().closes, 1u);
  EXPECT_EQ(reg.state(7, healed), BreakerState::kClosed);
  EXPECT_TRUE(reg.admit(7, healed + sim::SimTime::seconds(1.0)));
  // Fully healed: the failure count restarts from zero.
  reg.record_failure(7, healed + sim::SimTime::seconds(2.0));
  EXPECT_EQ(reg.state(7, healed + sim::SimTime::seconds(2.0)),
            BreakerState::kClosed);
}

TEST(Breaker, FailedProbeEscalatesCoolingGeometrically) {
  BreakerRegistry<int> reg(fast_breaker());
  sim::SimTime now = sim::SimTime::zero();
  for (int i = 0; i < 3; ++i) reg.record_failure(7, now);

  // Probe after 4 s cooling fails: re-open for 8 s.
  now += sim::SimTime::seconds(4.0);
  EXPECT_TRUE(reg.admit(7, now));
  reg.record_failure(7, now);
  EXPECT_EQ(reg.stats().opens, 2u);
  EXPECT_FALSE(reg.admit(7, now + sim::SimTime::seconds(7.9)))
      << "cooling doubled to 8 s";
  EXPECT_EQ(reg.state(7, now + sim::SimTime::seconds(8.0)),
            BreakerState::kHalfOpen);

  // Second failed probe: 16 s.
  now += sim::SimTime::seconds(8.0);
  EXPECT_TRUE(reg.admit(7, now));
  reg.record_failure(7, now);
  EXPECT_FALSE(reg.admit(7, now + sim::SimTime::seconds(15.9)));
  EXPECT_TRUE(reg.admit(7, now + sim::SimTime::seconds(16.0)));
}

TEST(Breaker, SuccessWhileClosedResetsConsecutiveFailures) {
  BreakerRegistry<int> reg(fast_breaker());
  const sim::SimTime t0 = sim::SimTime::zero();
  reg.record_failure(7, t0);
  reg.record_failure(7, t0);
  reg.record_success(7, t0);  // streak broken
  reg.record_failure(7, t0);
  reg.record_failure(7, t0);
  EXPECT_EQ(reg.state(7, t0), BreakerState::kClosed)
      << "non-consecutive failures must not trip the breaker";
}

// ---------------------------------------------------------------------------
// Channel fixture: a wireless mesh the chaos engine can chew on
// ---------------------------------------------------------------------------

net::NodeConfig mesh_node(double x, double y) {
  net::NodeConfig c;
  c.pos = {x, y, 0.0};
  c.kind = net::NodeKind::kSensor;
  c.radio = net::LinkClass::sensor_radio();  // 25 m range
  c.unlimited_energy = true;                 // isolate transport properties
  return c;
}

/// A 5x5 grid at 18 m spacing: every node reaches its 4-neighbours only,
/// so corner-to-corner traffic is genuinely multi-hop with alternates.
std::vector<NodeId> build_mesh(net::Network& net, std::size_t side = 5,
                               double spacing = 18.0) {
  std::vector<NodeId> nodes;
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      nodes.push_back(net.add_node(mesh_node(x * spacing, y * spacing)));
    }
  }
  return nodes;
}

TEST(ReliableChannel, DeliversAcrossMultipleHops) {
  sim::Simulator sim;
  net::Network net(sim, common::Rng(99));
  auto nodes = build_mesh(net);
  net::ReliableChannel channel(net, {}, common::Rng(5));

  int delivered = 0;
  channel.unicast(nodes.front(), nodes.back(), 64, Budget::unlimited(),
                  [&](bool ok) { delivered += ok ? 1 : 0; });
  sim.run();

  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(channel.stats().delivered, 1u);
  EXPECT_EQ(channel.stats().failed, 0u);
  // Corner to corner is 8 hops minimum; each hop is one data + one ACK.
  EXPECT_GE(channel.stats().data_frames, 8u);
  EXPECT_GE(channel.stats().ack_frames, 8u);
}

TEST(ReliableChannel, WindowQueuesExcessSendsAndDrainsAll) {
  sim::Simulator sim;
  net::Network net(sim, common::Rng(99));
  auto nodes = build_mesh(net);
  net::ReliableConfig config;
  config.window = 1;
  net::ReliableChannel channel(net, config, common::Rng(5));

  int done_count = 0;
  for (int i = 0; i < 3; ++i) {
    channel.unicast(nodes.front(), nodes.back(), 64, Budget::unlimited(),
                    [&](bool ok) {
                      ASSERT_TRUE(ok);
                      ++done_count;
                    });
  }
  sim.run();
  EXPECT_EQ(done_count, 3);
  EXPECT_EQ(channel.stats().delivered, 3u);
  EXPECT_EQ(channel.stats().queued, 2u) << "window=1 defers two of three";
}

TEST(ReliableChannel, BlownBudgetFailsWithoutTraffic) {
  sim::Simulator sim;
  net::Network net(sim, common::Rng(99));
  auto nodes = build_mesh(net);
  net::ReliableChannel channel(net, {}, common::Rng(5));

  int failures = 0;
  // Deadline already in the past when the hop cycle starts.
  channel.unicast(nodes.front(), nodes.back(), 64,
                  Budget::until(sim::SimTime::zero()),
                  [&](bool ok) { failures += ok ? 0 : 1; });
  sim.run();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(channel.stats().expired, 1u);
  EXPECT_EQ(channel.stats().data_frames, 0u)
      << "an expired budget must not buy any transmissions";
}

// ---------------------------------------------------------------------------
// Property 2: exactly-once delivery under lossy-mesh chaos
// ---------------------------------------------------------------------------

struct ChaosRunResult {
  net::ReliableStats stats;
  /// (accept time us, seq) per first destination acceptance, in order.
  std::vector<std::pair<std::int64_t, std::uint64_t>> delivery_log;
  std::vector<int> done_counts;   ///< callback firings per message
  std::vector<bool> done_values;  ///< last outcome per message
  double ledger_joules = 0.0;
};

/// Sends `sends` staggered corner-to-corner unicasts through a lossy-mesh
/// chaos schedule.  Pure function of `seed`.
ChaosRunResult run_chaos_scenario(std::uint64_t seed, int sends = 24) {
  sim::Simulator sim;
  net::Network net(sim, common::Rng(seed));
  auto nodes = build_mesh(net);

  sim::ChaosEngine chaos(net, seed * 31 + 7);
  sim::ChaosConfig chaos_config;
  chaos_config.horizon = sim::SimTime::seconds(60.0);
  chaos_config.fault_count = 14;
  chaos_config.mix = sim::ChaosMix::lossy_mesh();
  chaos.arm(chaos_config);

  net::ReliableChannel channel(net, {}, common::Rng(seed ^ 0xABCD));

  ChaosRunResult result;
  result.done_counts.assign(sends, 0);
  result.done_values.assign(sends, false);
  channel.set_delivery_probe([&](NodeId, std::uint64_t seq) {
    result.delivery_log.emplace_back(sim.now().us, seq);
  });

  for (int i = 0; i < sends; ++i) {
    const NodeId src = nodes[i % nodes.size()];
    const NodeId dst = nodes[nodes.size() - 1 - (i % nodes.size())];
    sim.schedule(sim::SimTime::seconds(0.5 + 2.0 * i), [&, i, src, dst] {
      channel.unicast(src, dst, 64,
                      Budget::until(sim.now() + sim::SimTime::seconds(20.0)),
                      [&, i](bool ok) {
                        ++result.done_counts[i];
                        result.done_values[i] = ok;
                      });
    });
  }
  sim.run();
  result.stats = channel.stats();
  result.ledger_joules = net.telemetry().total().joules;
  return result;
}

TEST(ReliabilityProperty, ExactlyOnceUnderLossyMeshChaos) {
  const auto result = run_chaos_scenario(0xC0FFEE);

  // Every send resolves exactly once — never zero (hang), never twice.
  for (std::size_t i = 0; i < result.done_counts.size(); ++i) {
    EXPECT_EQ(result.done_counts[i], 1) << "message " << i;
  }

  // No destination accepts the same sequence number twice: duplicates and
  // retransmissions after lost ACKs are suppressed at the receiver.
  std::map<std::uint64_t, int> accepts_per_seq;
  for (const auto& [when, seq] : result.delivery_log) {
    ++accepts_per_seq[seq];
  }
  for (const auto& [seq, count] : accepts_per_seq) {
    EXPECT_EQ(count, 1) << "seq " << seq << " accepted more than once";
  }

  // Each done(true) is witnessed by exactly one destination acceptance.
  std::size_t delivered = 0;
  for (bool ok : result.done_values) delivered += ok ? 1 : 0;
  EXPECT_GE(accepts_per_seq.size(), delivered)
      << "every success must have reached the destination";
  EXPECT_EQ(result.stats.delivered + result.stats.failed,
            result.stats.messages);

  // The chaos mix actually exercised the ARQ machinery.
  EXPECT_GT(result.stats.retransmissions, 0u)
      << "lossy mesh should force retransmits; weak seed?";
}

// ---------------------------------------------------------------------------
// Property 1 (channel level): same seed, bit-identical schedules
// ---------------------------------------------------------------------------

TEST(ReliabilityProperty, SameSeedReplaysBitIdenticalRetransmitSchedule) {
  const auto a = run_chaos_scenario(2026);
  const auto b = run_chaos_scenario(2026);

  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.delivered, b.stats.delivered);
  EXPECT_EQ(a.stats.failed, b.stats.failed);
  EXPECT_EQ(a.stats.expired, b.stats.expired);
  EXPECT_EQ(a.stats.data_frames, b.stats.data_frames);
  EXPECT_EQ(a.stats.ack_frames, b.stats.ack_frames);
  EXPECT_EQ(a.stats.retransmissions, b.stats.retransmissions);
  EXPECT_EQ(a.stats.duplicates_suppressed, b.stats.duplicates_suppressed);
  EXPECT_EQ(a.stats.reroutes, b.stats.reroutes);
  EXPECT_EQ(a.stats.queued, b.stats.queued);
  // Microsecond-exact delivery timeline, not just aggregate counters.
  EXPECT_EQ(a.delivery_log, b.delivery_log);
  EXPECT_EQ(a.done_values, b.done_values);
  EXPECT_EQ(a.ledger_joules, b.ledger_joules) << "bit-identical, not NEAR";
}

TEST(ReliabilityProperty, DifferentSeedsDiverge) {
  const auto a = run_chaos_scenario(1);
  const auto b = run_chaos_scenario(2);
  EXPECT_NE(a.delivery_log, b.delivery_log)
      << "distinct seeds should produce distinct fault/retransmit timelines";
}

// ---------------------------------------------------------------------------
// Property 3 (channel level): open link breakers short-circuit sends until
// the half-open probe succeeds
// ---------------------------------------------------------------------------

TEST(ReliabilityProperty, OpenLinkBreakerNeverAdmitsUntilProbeSucceeds) {
  sim::Simulator sim;
  net::Network net(sim, common::Rng(99));
  // A 3-node line: 0 - 1 - 2, single path, no alternates.
  const auto a = net.add_node(mesh_node(0, 0));
  const auto b = net.add_node(mesh_node(18, 0));
  const auto c = net.add_node(mesh_node(36, 0));
  (void)b;  // the relay: traffic crosses it, the test never names it again

  sim::ChaosEngine chaos(net, 11);
  // Total frame loss on every hop touching c for 5 s.  Unlike a blackout,
  // a degraded link stays visible to route discovery, so the channel keeps
  // transmitting into it — exactly what link breakers exist to stop.
  sim::Fault degrade;
  degrade.kind = sim::FaultKind::kLinkDegrade;
  degrade.at = sim::SimTime::seconds(0.5);
  degrade.duration = sim::SimTime::seconds(5.0);
  degrade.node = c;
  degrade.magnitude = 1.0;
  chaos.arm_schedule({degrade});

  net::ReliableChannel channel(net, {}, common::Rng(5));

  std::vector<bool> outcomes;
  // First send lands inside the degrade window: the b<->c hop exhausts its
  // attempts, trips the link breaker, and the message fails (no alternate
  // route exists).
  sim.schedule(sim::SimTime::seconds(1.0), [&] {
    channel.unicast(a, c, 64, Budget::unlimited(),
                    [&](bool ok) { outcomes.push_back(ok); });
  });
  // Second send starts long after the fault healed and the cooling period
  // elapsed: the next admit grants the half-open probe, the probe
  // succeeds, and the breaker closes.
  sim.schedule(sim::SimTime::seconds(30.0), [&] {
    channel.unicast(a, c, 64, Budget::unlimited(),
                    [&](bool ok) { outcomes.push_back(ok); });
  });
  sim.run();

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0]) << "blackout window: delivery must fail";
  EXPECT_TRUE(outcomes[1]) << "healed link: probe re-admits traffic";

  const auto& stats = channel.link_breakers().stats();
  EXPECT_GE(stats.opens, 1u) << "repeated hop failures must trip the breaker";
  EXPECT_GE(stats.short_circuits, 1u)
      << "while cooling, the open breaker must refuse the hop";
  EXPECT_GE(stats.probes, 1u);
  EXPECT_GE(stats.closes, 1u) << "successful probe closes the breaker";
  EXPECT_EQ(channel.link_breakers().open_count(sim.now()), 0u);
  EXPECT_GE(channel.stats().reroutes, 1u)
      << "the open breaker re-routes (and finding nothing, fails)";
}

// ---------------------------------------------------------------------------
// Property 1 (runtime level): reliability-enabled QueryOutcome replays
// bit-identically from the seed, and the ledger still balances
// ---------------------------------------------------------------------------

core::RuntimeConfig reliable_runtime_config(std::uint64_t seed) {
  core::RuntimeConfig config;
  config.seed = seed;
  config.sensors.sensor_count = 25;
  config.sensors.width_m = 46.0;
  config.sensors.height_m = 46.0;
  config.sensors.base_pos = {-5, -5, 0};
  config.sensors.noise_std = 0.0;
  config.advertise_sensor_services = false;
  config.pde_resolution = 13;
  config.reliability.enabled = true;
  return config;
}

core::QueryOutcome run_reliable_query(std::uint64_t seed) {
  core::PervasiveGridRuntime runtime(reliable_runtime_config(seed));
  sim::ChaosEngine chaos(runtime.network(), seed * 131 + 3);
  sim::ChaosConfig chaos_config;
  chaos_config.horizon = sim::SimTime::seconds(40.0);
  chaos_config.fault_count = 8;
  chaos_config.mix = sim::ChaosMix::lossy_mesh();
  chaos.arm(chaos_config);

  auto outcome = runtime.submit_and_run("SELECT AVG(temp) FROM sensors",
                                        partition::SolutionModel::kAllToBase);
  runtime.simulator().run();  // drain remaining fault-heal events

  sim::InvariantRegistry invariants;
  invariants.add("ledger-conservation", [&] {
    return sim::check_ledger_conservation(runtime.telemetry());
  });
  invariants.add("chaos-quiescent",
                 [&] { return sim::check_chaos_quiescent(chaos); });
  auto violations = invariants.run_all();
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? ""
                             : violations.front().invariant + ": " +
                                   violations.front().detail);
  return outcome;
}

TEST(ReliabilityProperty, QueryOutcomeBitIdenticalAcrossReplays) {
  const auto a = run_reliable_query(77);
  const auto b = run_reliable_query(77);

  ASSERT_EQ(a.ok, b.ok);
  // EXPECT_EQ on doubles intentionally: the contract is bit-identity.
  EXPECT_EQ(a.actual.value, b.actual.value);
  EXPECT_EQ(a.actual.response_s, b.actual.response_s);
  EXPECT_EQ(a.actual.energy_j, b.actual.energy_j);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.handheld_response_s, b.handheld_response_s);
}

TEST(ReliabilityProperty, CoverageGradesPartialCollections) {
  // Clean network, reliability on: full coverage, not degraded.
  core::PervasiveGridRuntime runtime(reliable_runtime_config(7));
  auto outcome = runtime.submit_and_run("SELECT AVG(temp) FROM sensors",
                                        partition::SolutionModel::kAllToBase);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.coverage, 1.0);
  EXPECT_FALSE(outcome.degraded);
  EXPECT_GT(runtime.reliable_channel()->stats().delivered, 0u);
}

}  // namespace
}  // namespace pgrid
