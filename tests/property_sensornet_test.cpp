// Property tests for the sensor network: every collection strategy must
// compute the same (correct) aggregate on lossless radios, respect energy
// orderings, and replay deterministically — across sizes and strategies.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "sensornet/lifetime.hpp"
#include "sensornet/sensor_network.hpp"

namespace pgrid::sensornet {
namespace {

struct CollectCase {
  std::size_t sensors;
  CollectionStrategy strategy;
};

class CollectionProperty : public ::testing::TestWithParam<CollectCase> {
 protected:
  CollectionProperty() : net_(sim_, common::Rng(99)) {
    SensorNetworkConfig config;
    config.sensor_count = GetParam().sensors;
    const double side =
        15.0 * std::ceil(std::sqrt(double(GetParam().sensors)));
    config.width_m = side;
    config.height_m = side;
    config.base_pos = {-5, -5, 0};
    config.noise_std = 0.0;
    config.radio.loss_prob = 0.0;  // lossless: exact accounting
    snet_ = std::make_unique<SensorNetwork>(net_, config, common::Rng(3));
  }

  std::size_t clusters() const {
    return static_cast<std::size_t>(
        std::ceil(std::sqrt(double(GetParam().sensors))));
  }

  sim::Simulator sim_;
  net::Network net_;
  std::unique_ptr<SensorNetwork> snet_;
};

TEST_P(CollectionProperty, AggregateMatchesDirectComputation) {
  GradientField field(7.0, 0.31);
  CollectionResult result;
  run_collection(*snet_, field, GetParam().strategy, clusters(),
                 [&](CollectionResult r) { result = r; });
  sim_.run();
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.reports, GetParam().sensors);

  AggregateState direct;
  for (auto id : snet_->sensors()) {
    direct.add(field.value(net_.node(id).pos, sim::SimTime::zero()));
  }
  for (auto fn : {AggregateFunction::kMin, AggregateFunction::kMax,
                  AggregateFunction::kAvg, AggregateFunction::kSum,
                  AggregateFunction::kCount}) {
    EXPECT_NEAR(result.aggregate.result(fn), direct.result(fn), 1e-9)
        << to_string(fn);
  }
}

TEST_P(CollectionProperty, EnergyOrderingHolds) {
  // In-network strategies never cost more than shipping every raw reading.
  UniformField field(25.0);
  CollectionResult raw;
  snet_->collect_all_to_base(field, [&](CollectionResult r) { raw = r; });
  sim_.run();
  net_.reset_energy();
  CollectionResult strategy_result;
  run_collection(*snet_, field, GetParam().strategy, clusters(),
                 [&](CollectionResult r) { strategy_result = r; });
  sim_.run();
  EXPECT_LE(strategy_result.energy_j, raw.energy_j * 1.0001)
      << to_string(GetParam().strategy);
}

TEST_P(CollectionProperty, EnergyEqualsLedgerDelta) {
  UniformField field(25.0);
  const double before = net_.battery_energy_consumed();
  CollectionResult result;
  run_collection(*snet_, field, GetParam().strategy, clusters(),
                 [&](CollectionResult r) { result = r; });
  sim_.run();
  EXPECT_NEAR(result.energy_j, net_.battery_energy_consumed() - before,
              1e-12);
}

TEST_P(CollectionProperty, DeterministicReplay) {
  auto run_once = [&]() {
    sim::Simulator sim;
    net::Network net(sim, common::Rng(99));
    SensorNetworkConfig config;
    config.sensor_count = GetParam().sensors;
    const double side =
        15.0 * std::ceil(std::sqrt(double(GetParam().sensors)));
    config.width_m = side;
    config.height_m = side;
    config.base_pos = {-5, -5, 0};
    config.noise_std = 0.4;  // noise on, still deterministic
    SensorNetwork snet(net, config, common::Rng(3));
    GradientField field(7.0, 0.31);
    CollectionResult result;
    run_collection(snet, field, GetParam().strategy,
                   static_cast<std::size_t>(
                       std::ceil(std::sqrt(double(GetParam().sensors)))),
                   [&](CollectionResult r) { result = r; });
    sim.run();
    return std::make_tuple(result.aggregate.sum, result.energy_j,
                           result.elapsed_s, result.reports);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(CollectionProperty, SurvivesPartialNodeFailure) {
  // Kill ~20% of sensors: the round completes with the remaining reports
  // and the aggregate stays within the field's range.
  GradientField field(7.0, 0.31);
  std::size_t killed = 0;
  // Start at 1: sensor 0 is the base station's only neighbour on the
  // smallest grids, and severing it legitimately yields zero reports.
  for (std::size_t i = 1; i < snet_->sensors().size(); i += 5) {
    net_.set_node_up(snet_->sensors()[i], false);
    ++killed;
  }
  CollectionResult result;
  run_collection(*snet_, field, GetParam().strategy, clusters(),
                 [&](CollectionResult r) { result = r; });
  sim_.run();
  EXPECT_LE(result.reports, GetParam().sensors - killed);
  EXPECT_GT(result.reports, 0u);
  if (result.reports > 0) {
    const double avg = result.aggregate.result(AggregateFunction::kAvg);
    EXPECT_GE(avg, 7.0 - 1e-9);
    EXPECT_LE(avg, 7.0 + 0.31 * 200.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndStrategies, CollectionProperty,
    ::testing::Values(
        CollectCase{16, CollectionStrategy::kAllToBase},
        CollectCase{16, CollectionStrategy::kClusterAggregate},
        CollectCase{16, CollectionStrategy::kTreeAggregate},
        CollectCase{64, CollectionStrategy::kAllToBase},
        CollectCase{64, CollectionStrategy::kClusterAggregate},
        CollectCase{64, CollectionStrategy::kTreeAggregate},
        CollectCase{144, CollectionStrategy::kTreeAggregate},
        CollectCase{144, CollectionStrategy::kClusterAggregate}),
    [](const ::testing::TestParamInfo<CollectCase>& info) {
      std::string name = "n" + std::to_string(info.param.sensors) + "_";
      switch (info.param.strategy) {
        case CollectionStrategy::kAllToBase: name += "raw"; break;
        case CollectionStrategy::kClusterAggregate: name += "cluster"; break;
        case CollectionStrategy::kTreeAggregate: name += "tree"; break;
      }
      return name;
    });

}  // namespace
}  // namespace pgrid::sensornet
