// Property tests for SPMD world partitioning (sim/shard.hpp,
// net/shard_map.hpp, core/sharded.hpp): the determinism contract says the
// region-to-shard fold is invisible to outcomes — running the same world on
// 1, 2 or 4 shards (serial or pooled) must produce bit-identical event
// order, NetworkStats, ledger totals and chaos schedules.  These sweeps
// compare full witnesses (order digests, per-region event logs, query
// outcomes) across shard counts rather than spot-checking.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/sharded.hpp"
#include "net/shard_map.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace pgrid {
namespace {

// ---------------------------------------------------------------------------
// Kernel-level lockstep: synthetic regions with cross-region chatter.

/// One region's deterministic workload: a self-rescheduling event chain
/// that logs (time, step) and periodically posts a message to the next
/// region.  The log is the per-region event-order witness.
struct RegionLog {
  std::vector<std::int64_t> fired_at_us;
  std::vector<std::uint64_t> steps;
};

/// Builds R regions with chained workloads into `world`; every third step
/// posts a cross-region echo to region (r+1) % R timestamped two windows
/// ahead (so no lookahead violations).
struct SyntheticWorld {
  explicit SyntheticWorld(std::size_t region_count, sim::ShardingConfig cfg)
      : sims(region_count), logs(region_count) {
    std::vector<sim::Simulator*> ptrs;
    for (auto& s : sims) ptrs.push_back(&s);
    world = std::make_unique<sim::LockstepWorld>(cfg, std::move(ptrs));
    for (std::size_t r = 0; r < region_count; ++r) {
      schedule_step(r, sim::SimTime::microseconds(100 * (r + 1)), 0);
    }
  }

  void schedule_step(std::size_t r, sim::SimTime at, std::uint64_t step) {
    sims[r].schedule_at(at, [this, r, step] {
      logs[r].fired_at_us.push_back(sims[r].now().us);
      logs[r].steps.push_back(step);
      if (step >= 60) return;
      if (step % 3 == 2) {
        const std::size_t dst = (r + 1) % sims.size();
        const sim::SimTime deliver =
            sims[r].now() + world->config().window + world->config().window;
        world->post(static_cast<std::uint32_t>(r),
                    static_cast<std::uint32_t>(dst), deliver,
                    [this, dst, step] {
                      logs[dst].fired_at_us.push_back(sims[dst].now().us);
                      logs[dst].steps.push_back(1000 + step);
                    });
      }
      schedule_step(r, sims[r].now() + sim::SimTime::microseconds(700 + 13 * r),
                    step + 1);
    });
  }

  std::vector<sim::Simulator> sims;
  std::vector<RegionLog> logs;
  std::unique_ptr<sim::LockstepWorld> world;
};

struct SyntheticResult {
  std::vector<RegionLog> logs;
  std::uint64_t digest = 0;
  sim::LockstepStats stats;
};

SyntheticResult run_synthetic(std::size_t regions, std::size_t shards,
                              bool pooled) {
  sim::ShardingConfig cfg;
  cfg.shards = shards;
  cfg.window = sim::SimTime::microseconds(500);
  cfg.parallel = pooled;
  SyntheticWorld world(regions, cfg);
  common::ThreadPool pool(4);
  SyntheticResult result;
  result.stats = world.world->run(pooled ? &pool : nullptr);
  result.logs = std::move(world.logs);
  result.digest = world.world->order_digest();
  return result;
}

void expect_same_logs(const SyntheticResult& a, const SyntheticResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.logs.size(), b.logs.size());
  for (std::size_t r = 0; r < a.logs.size(); ++r) {
    EXPECT_EQ(a.logs[r].fired_at_us, b.logs[r].fired_at_us)
        << label << ": region " << r << " fire times diverged";
    EXPECT_EQ(a.logs[r].steps, b.logs[r].steps)
        << label << ": region " << r << " event order diverged";
  }
  EXPECT_EQ(a.digest, b.digest) << label << ": order digest diverged";
  EXPECT_EQ(a.stats.events, b.stats.events);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.lookahead_violations, b.stats.lookahead_violations);
}

class ShardCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardCountSweep, LockstepEventOrderInvariantUnderShardCount) {
  // Baseline: 1 shard, serial.  Sweep: GetParam() shards, serial.
  const auto baseline = run_synthetic(4, 1, false);
  const auto sharded = run_synthetic(4, GetParam(), false);
  expect_same_logs(baseline, sharded,
                   "shards=" + std::to_string(GetParam()));
  EXPECT_EQ(baseline.stats.lookahead_violations, 0u);
}

TEST_P(ShardCountSweep, PooledLanesBitIdenticalToSerial) {
  const auto serial = run_synthetic(4, GetParam(), false);
  const auto pooled = run_synthetic(4, GetParam(), true);
  expect_same_logs(serial, pooled,
                   "pooled shards=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardCountSweep,
                         ::testing::Values(1u, 2u, 4u));

TEST(Lockstep, MatchesGlobalSingleQueueBaseline) {
  // The same workload in one global simulator: regions interleave in a
  // single heap instead of running lockstep.  Per-region projections of the
  // event stream must match the sharded run exactly (regions only interact
  // through timestamped messages, which both executions honour).
  const std::size_t kRegions = 3;
  sim::Simulator global;
  std::vector<RegionLog> global_logs(kRegions);
  struct Chain {
    sim::Simulator* sim;
    std::vector<RegionLog>* logs;
    std::function<void(std::size_t, sim::SimTime, std::uint64_t)> step;
  };
  auto chain = std::make_shared<Chain>();
  chain->sim = &global;
  chain->logs = &global_logs;
  chain->step = [chain](std::size_t r, sim::SimTime at, std::uint64_t s) {
    chain->sim->schedule_at(at, [chain, r, s] {
      (*chain->logs)[r].fired_at_us.push_back(chain->sim->now().us);
      (*chain->logs)[r].steps.push_back(s);
      if (s >= 60) return;
      if (s % 3 == 2) {
        const std::size_t dst = (r + 1) % chain->logs->size();
        chain->sim->schedule_at(
            chain->sim->now() + sim::SimTime::microseconds(1000),
            [chain, dst, s] {
              (*chain->logs)[dst].fired_at_us.push_back(chain->sim->now().us);
              (*chain->logs)[dst].steps.push_back(1000 + s);
            });
      }
      chain->step(r, chain->sim->now() +
                         sim::SimTime::microseconds(700 + 13 * r),
                  s + 1);
    });
  };
  for (std::size_t r = 0; r < kRegions; ++r) {
    chain->step(r, sim::SimTime::microseconds(100 * (r + 1)), 0);
  }
  global.run();
  chain->step = nullptr;  // break the shared_ptr self-capture cycle

  // Sharded run of the identical workload (message latency 1000us = two
  // 500us windows, matching SyntheticWorld).
  const auto sharded = run_synthetic(kRegions, 2, false);
  for (std::size_t r = 0; r < kRegions; ++r) {
    EXPECT_EQ(global_logs[r].fired_at_us, sharded.logs[r].fired_at_us)
        << "region " << r;
    EXPECT_EQ(global_logs[r].steps, sharded.logs[r].steps) << "region " << r;
  }
}

TEST(Lockstep, LookaheadViolationsCountedAndClamped) {
  sim::ShardingConfig cfg;
  cfg.shards = 2;
  cfg.window = sim::SimTime::milliseconds(10);
  SyntheticWorld world(2, cfg);
  // A message timestamped in the past of the first barrier: counted as a
  // violation and clamped to the receiver's clock, never lost.
  bool delivered = false;
  world.world->post_control(1, sim::SimTime::microseconds(-5),
                            [&delivered] { delivered = true; });
  const auto stats = world.world->run(nullptr);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(stats.lookahead_violations, 1u);
}

// ---------------------------------------------------------------------------
// ShardMap: assignment derived from the spatial index's quantization.

TEST(ShardMap, CellGranularAssignmentAndBoundary) {
  net::ShardMap map({net::Vec3{0, 0, 0}, net::Vec3{100, 0, 0}}, 10.0);
  // Same cell -> same region, whole cells flip at the midpoint.
  EXPECT_EQ(map.region_of_pos({1, 1, 0}), 0u);
  EXPECT_EQ(map.region_of_pos({9, 9, 0}), 0u);
  EXPECT_EQ(map.region_of_pos({99, 1, 0}), 1u);
  EXPECT_EQ(map.region_of_pos({41, 0, 0}), 0u);
  EXPECT_EQ(map.region_of_pos({61, 0, 0}), 1u);
  map.assign(7, {3, 3, 0});
  map.assign(9, {97, 2, 0});
  EXPECT_EQ(map.region_of(7), 0u);
  EXPECT_EQ(map.region_of(9), 1u);
  EXPECT_TRUE(map.boundary(7, 9));
  EXPECT_FALSE(map.boundary(7, 7));
  // Unregistered nodes never count as boundary traffic.
  EXPECT_FALSE(map.boundary(7, 1234));
  EXPECT_EQ(map.region_of(1234), net::kInvalidRegion);
  EXPECT_GE(map.cells_mapped(), 4u);
}

TEST(ShardMap, ShardFoldIsPure) {
  for (std::uint32_t region = 0; region < 16; ++region) {
    EXPECT_EQ(net::ShardMap::shard_of(region, 4), region % 4);
    EXPECT_EQ(net::ShardMap::shard_of(region, 1), 0u);
    EXPECT_EQ(net::ShardMap::shard_of(region, 0), 0u);
  }
}

// ---------------------------------------------------------------------------
// Full-deployment witnesses across shard counts.

core::ShardedDeploymentConfig deployment_config(std::size_t regions,
                                                std::size_t shards) {
  core::ShardedDeploymentConfig config;
  config.base.seed = 42;
  config.base.sensors.sensor_count = 16;
  config.base.sensors.width_m = 60.0;
  config.base.sensors.height_m = 60.0;
  config.base.sensors.noise_std = 0.0;
  config.base.advertise_sensor_services = false;
  config.base.pde_resolution = 9;
  config.base.pool_threads = 1;
  config.base.sharding.shards = shards;
  config.base.sharding.window = sim::SimTime::milliseconds(5);
  config.regions = regions;
  config.region_spacing_m = 400.0;
  config.backhaul_latency = sim::SimTime::milliseconds(10);
  return config;
}

struct DeploymentWitness {
  std::vector<core::QueryOutcome> outcomes;
  std::vector<net::NetworkStats> stats;
  std::vector<double> joules;
  std::uint64_t digest = 0;
  sim::LockstepStats lockstep;
};

DeploymentWitness run_deployment(std::size_t regions, std::size_t shards) {
  core::ShardedDeployment dep(deployment_config(regions, shards));
  DeploymentWitness w;
  // Slots are preallocated because callbacks fire on shard lanes: each lane
  // writes only its own region's slot, never resizing the vector.
  w.outcomes.resize(regions + 1);
  for (std::size_t r = 0; r < regions; ++r) {
    dep.submit(r, sim::SimTime::milliseconds(1),
               "SELECT AVG(temp) FROM sensors",
               [&w, r](core::QueryOutcome outcome) {
                 w.outcomes[r] = std::move(outcome);
               });
  }
  // One cross-region forwarding over the wired backhaul, entering region
  // regions-1 from region 0.
  dep.submit_remote(0, regions - 1, sim::SimTime::milliseconds(2),
                    "SELECT MAX(temp) FROM sensors",
                    [&w, regions](core::QueryOutcome outcome) {
                      w.outcomes[regions] = std::move(outcome);
                    });
  w.lockstep = dep.run();
  for (std::size_t r = 0; r < regions; ++r) {
    w.stats.push_back(dep.region(r).network().stats());
    w.joules.push_back(dep.region(r).telemetry().total().joules);
  }
  w.digest = dep.order_digest();
  return w;
}

void expect_same_witness(const DeploymentWitness& a,
                         const DeploymentWitness& b,
                         const std::string& label) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size()) << label;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].ok, b.outcomes[i].ok) << label << " #" << i;
    EXPECT_EQ(a.outcomes[i].model, b.outcomes[i].model) << label << " #" << i;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a.outcomes[i].actual.value, b.outcomes[i].actual.value)
        << label << " #" << i;
    EXPECT_EQ(a.outcomes[i].actual.energy_j, b.outcomes[i].actual.energy_j)
        << label << " #" << i;
    EXPECT_EQ(a.outcomes[i].actual.data_bytes, b.outcomes[i].actual.data_bytes)
        << label << " #" << i;
    EXPECT_EQ(a.outcomes[i].handheld_response_s,
              b.outcomes[i].handheld_response_s)
        << label << " #" << i;
  }
  for (std::size_t r = 0; r < a.stats.size(); ++r) {
    EXPECT_EQ(a.stats[r].transmissions, b.stats[r].transmissions)
        << label << " region " << r;
    EXPECT_EQ(a.stats[r].delivered, b.stats[r].delivered)
        << label << " region " << r;
    EXPECT_EQ(a.stats[r].bytes_sent, b.stats[r].bytes_sent)
        << label << " region " << r;
    EXPECT_EQ(a.stats[r].energy_j, b.stats[r].energy_j)
        << label << " region " << r;
    EXPECT_EQ(a.stats[r].cross_region_frames, b.stats[r].cross_region_frames)
        << label << " region " << r;
    EXPECT_EQ(a.joules[r], b.joules[r]) << label << " region " << r;
  }
  EXPECT_EQ(a.digest, b.digest) << label;
  EXPECT_EQ(a.lockstep.events, b.lockstep.events) << label;
  EXPECT_EQ(a.lockstep.messages, b.lockstep.messages) << label;
}

TEST(ShardedDeployment, OutcomesBitIdenticalAcrossShardCounts) {
  const auto one = run_deployment(4, 1);
  for (const auto& outcome : one.outcomes) {
    ASSERT_TRUE(outcome.ok) << outcome.error;
  }
  EXPECT_EQ(one.outcomes.size(), 5u);  // 4 local + 1 forwarded
  EXPECT_GT(one.lockstep.messages, 0u);
  const auto two = run_deployment(4, 2);
  const auto four = run_deployment(4, 4);
  expect_same_witness(one, two, "shards 1 vs 2");
  expect_same_witness(one, four, "shards 1 vs 4");
}

TEST(ShardedDeployment, KillSwitchMatchesLegacyRuntime) {
  // One region, one shard: the deployment must be byte-identical to a plain
  // PervasiveGridRuntime built from the same config — same seed (region 0
  // keeps it), same zero origin, same everything.
  auto config = deployment_config(1, 1);
  core::PervasiveGridRuntime legacy(config.base);
  const auto legacy_outcome =
      legacy.submit_and_run("SELECT AVG(temp) FROM sensors");
  ASSERT_TRUE(legacy_outcome.ok) << legacy_outcome.error;

  core::ShardedDeployment dep(config);
  core::QueryOutcome sharded_outcome;
  dep.submit(0, sim::SimTime::zero(), "SELECT AVG(temp) FROM sensors",
             [&](core::QueryOutcome outcome) {
               sharded_outcome = std::move(outcome);
             });
  dep.run();
  ASSERT_TRUE(sharded_outcome.ok) << sharded_outcome.error;
  EXPECT_EQ(sharded_outcome.actual.value, legacy_outcome.actual.value);
  EXPECT_EQ(sharded_outcome.actual.energy_j, legacy_outcome.actual.energy_j);
  EXPECT_EQ(sharded_outcome.actual.data_bytes,
            legacy_outcome.actual.data_bytes);
  const auto& ls = dep.region(0).network().stats();
  const auto& rs = legacy.network().stats();
  EXPECT_EQ(ls.transmissions, rs.transmissions);
  EXPECT_EQ(ls.bytes_sent, rs.bytes_sent);
  EXPECT_EQ(ls.energy_j, rs.energy_j);
  EXPECT_EQ(dep.region(0).telemetry().total().joules,
            legacy.telemetry().total().joules);
}

TEST(ShardedDeployment, RegionSeedDerivation) {
  EXPECT_EQ(core::ShardedDeployment::region_seed(42, 0), 42u);
  EXPECT_NE(core::ShardedDeployment::region_seed(42, 1), 42u);
  EXPECT_NE(core::ShardedDeployment::region_seed(42, 1),
            core::ShardedDeployment::region_seed(42, 2));
}

TEST(ShardedDeployment, OverlappingRegionsCountBoundaryFrames) {
  // Pack regions so close that one deployment's sensors fall in cells owned
  // by the neighbour region: the send path must count those frames as
  // boundary traffic — and the count must not depend on the shard fold.
  auto config = deployment_config(2, 1);
  config.region_spacing_m = 50.0;  // deployment is 60 m wide: overlap
  std::vector<std::uint64_t> counts;
  for (std::size_t shards : {1u, 2u}) {
    config.base.sharding.shards = shards;
    core::ShardedDeployment dep(config);
    core::QueryOutcome outcome;
    dep.submit(0, sim::SimTime::milliseconds(1),
               "SELECT AVG(temp) FROM sensors",
               [&](core::QueryOutcome o) { outcome = std::move(o); });
    dep.run();
    ASSERT_TRUE(outcome.ok) << outcome.error;
    counts.push_back(dep.region(0).network().stats().cross_region_frames);
  }
  EXPECT_GT(counts[0], 0u)
      << "overlapping regions must produce boundary traffic";
  EXPECT_EQ(counts[0], counts[1]);
}

// ---------------------------------------------------------------------------
// Chaos under sharding: schedules and injected faults are bit-identical
// across shard counts, including remote injection through the control lane.

struct ChaosWitness {
  std::vector<sim::Schedule> schedules;
  std::vector<std::vector<std::size_t>> injected_order;
  std::vector<net::NetworkStats> stats;
  std::uint64_t digest = 0;
};

ChaosWitness run_chaos_deployment(std::size_t shards) {
  auto config = deployment_config(2, shards);
  core::ShardedDeployment dep(config);
  ChaosWitness w;
  sim::ChaosConfig chaos_config;
  chaos_config.horizon = sim::SimTime::seconds(30.0);
  chaos_config.fault_count = 8;
  chaos_config.mix = sim::ChaosMix::partition_storm();
  for (std::size_t r = 0; r < 2; ++r) {
    w.schedules.push_back(dep.arm_chaos(r, chaos_config));
  }
  // A remote partition injected across the control lane: region 1's first
  // three sensors are cut off, straddling whatever shard lane owns them.
  sim::Fault storm;
  storm.kind = sim::FaultKind::kPartition;
  storm.at = sim::SimTime::seconds(1.0);
  storm.duration = sim::SimTime::seconds(2.0);
  storm.group = {dep.region(1).sensors().sensors()[0],
                 dep.region(1).sensors().sensors()[1],
                 dep.region(1).sensors().sensors()[2]};
  dep.inject_remote(1, storm);
  for (std::size_t r = 0; r < 2; ++r) {
    dep.submit(r, sim::SimTime::milliseconds(500),
               "SELECT AVG(temp) FROM sensors", [](core::QueryOutcome) {});
  }
  dep.run();
  for (std::size_t r = 0; r < 2; ++r) {
    std::vector<std::size_t> order;
    for (const auto& injected : dep.chaos(r)->injected()) {
      order.push_back(injected.index);
    }
    w.injected_order.push_back(std::move(order));
    w.stats.push_back(dep.region(r).network().stats());
    EXPECT_TRUE(dep.chaos(r)->quiescent());
  }
  w.digest = dep.order_digest();
  return w;
}

TEST(ShardedChaos, SchedulesAndInjectionBitIdenticalAcrossShardCounts) {
  const auto one = run_chaos_deployment(1);
  // The remote partition must actually have fired in region 1.
  ASSERT_FALSE(one.injected_order[1].empty());
  bool saw_injected = false;
  for (std::size_t index : one.injected_order[1]) {
    if (index >= 8) saw_injected = true;  // armed schedule has 8 faults
  }
  EXPECT_TRUE(saw_injected) << "control-lane fault never applied";
  for (std::size_t shards : {2u, 4u}) {
    const auto other = run_chaos_deployment(shards);
    EXPECT_EQ(one.schedules, other.schedules) << shards << " shards";
    EXPECT_EQ(one.injected_order, other.injected_order) << shards << " shards";
    EXPECT_EQ(one.digest, other.digest) << shards << " shards";
    for (std::size_t r = 0; r < 2; ++r) {
      EXPECT_EQ(one.stats[r].transmissions, other.stats[r].transmissions);
      EXPECT_EQ(one.stats[r].dropped, other.stats[r].dropped);
      EXPECT_EQ(one.stats[r].energy_j, other.stats[r].energy_j);
    }
  }
}

}  // namespace
}  // namespace pgrid
