// Property tests for the multi-query sharing layer (core/sharing.hpp):
//
//  - shared TAG tree results are bit-identical to the same query executed
//    unshared on an identical seeded deployment (the layer changes who pays,
//    never what is answered);
//  - every subscriber of one group sees the same shared round;
//  - refcounting: the drop to zero subscribers tears the epoch schedule
//    down, deterministically, with nothing left behind;
//  - kill switch: sharing disabled — and sharing enabled but untriggered —
//    leave query fingerprints bit-identical to the default build;
//  - admission control: queueing, coalescing onto live groups past the
//    cap, overload shedding, and deadline-budget shedding;
//  - grouping stays correct under chaos (churn / loss / partition-heal
//    phases) and waypoint mobility;
//  - compose-side sub-plan dedup: identical discover sub-plans resolve once
//    per validity window, with per-consumer filtering intact.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "compose/manager.hpp"
#include "compose/provider.hpp"
#include "compose/task.hpp"
#include "core/runtime.hpp"
#include "core/sharing.hpp"
#include "net/mobility.hpp"
#include "net/reliable.hpp"
#include "query/canonical.hpp"
#include "sim/chaos.hpp"
#include "sim/invariants.hpp"

namespace pgrid {
namespace {

core::RuntimeConfig sharing_config(std::size_t sensors, bool sharing,
                                   std::uint64_t seed = 42) {
  core::RuntimeConfig config;
  config.seed = seed;
  config.sensors.sensor_count = sensors;
  const auto side = static_cast<double>(static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(sensors)))));
  config.sensors.width_m = 15.0 * (side - 1.0) + 1.0;
  config.sensors.height_m = config.sensors.width_m;
  config.sensors.base_pos = {-5.0, -5.0, 0.0};
  config.advertise_sensor_services = false;
  config.continuous_epochs = 4;
  config.sharing.enabled = sharing;
  return config;
}

// ---------------------------------------------------------------------------
// Bit-identity of the answers
// ---------------------------------------------------------------------------

TEST(SharedTree, CreatorValuesBitIdenticalToUnsharedRun) {
  // Lossless radios: the sensornet's sampling rng is the only random input
  // to the per-epoch values, and it draws in identical order whether one
  // query or a whole group consumes the collection.
  const std::string query = "SELECT AVG(temp) FROM sensors EPOCH DURATION 2";

  auto unshared_config = sharing_config(25, false);
  unshared_config.sensors.radio.loss_prob = 0.0;
  core::PervasiveGridRuntime unshared(unshared_config);
  const auto baseline = unshared.submit_and_run(
      query, partition::SolutionModel::kTreeAggregate);
  ASSERT_TRUE(baseline.ok) << baseline.error;
  ASSERT_EQ(baseline.epochs.size(), 4u);
  EXPECT_FALSE(baseline.shared);

  auto shared_config = sharing_config(25, true);
  shared_config.sensors.radio.loss_prob = 0.0;
  core::PervasiveGridRuntime runtime(shared_config);
  core::QueryOutcome creator;
  core::QueryOutcome joiner_avg;
  core::QueryOutcome joiner_max;
  runtime.submit_with_model(query, partition::SolutionModel::kTreeAggregate,
                            [&](core::QueryOutcome out) { creator = out; });
  // Joiners arrive mid-round 0 (epoch duration 2 s), so they ride the same
  // group from round 1 on — a subscriber never sees pre-join data.
  runtime.simulator().schedule(sim::SimTime::seconds(0.5), [&] {
    runtime.submit_with_model(query,
                              partition::SolutionModel::kTreeAggregate,
                              [&](core::QueryOutcome out) { joiner_avg = out; });
    runtime.submit_with_model(
        "SELECT MAX(temp) FROM sensors EPOCH DURATION 2",
        partition::SolutionModel::kTreeAggregate,
        [&](core::QueryOutcome out) { joiner_max = out; });
  });
  runtime.simulator().run();

  ASSERT_TRUE(creator.ok) << creator.error;
  ASSERT_TRUE(joiner_avg.ok) << joiner_avg.error;
  ASSERT_TRUE(joiner_max.ok) << joiner_max.error;
  EXPECT_TRUE(creator.shared);
  EXPECT_TRUE(joiner_avg.shared);
  EXPECT_TRUE(joiner_max.shared);

  // The creator's rounds are the unshared run's rounds, bit for bit.
  ASSERT_EQ(creator.epochs.size(), baseline.epochs.size());
  for (std::size_t i = 0; i < baseline.epochs.size(); ++i) {
    EXPECT_EQ(creator.epochs[i].value, baseline.epochs[i].value)
        << "epoch " << i;
  }
  EXPECT_EQ(creator.actual.value, baseline.actual.value);

  // Joiners consume the same shared rounds, offset by their join epoch: the
  // AVG joiner's epoch i is the creator's epoch i+1, finalized identically.
  ASSERT_EQ(joiner_avg.epochs.size(), 4u);
  for (std::size_t i = 0; i + 1 < creator.epochs.size(); ++i) {
    EXPECT_EQ(joiner_avg.epochs[i].value, creator.epochs[i + 1].value)
        << "joiner epoch " << i;
  }
  // Same rounds, different finalizer: MAX of the merged state dominates AVG.
  for (std::size_t i = 0; i < joiner_max.epochs.size(); ++i) {
    EXPECT_GE(joiner_max.epochs[i].value, joiner_avg.epochs[i].value);
  }

  // One group existed, it is gone, and its schedule is cancelled.
  auto& registry = runtime.sharing()->registry();
  EXPECT_EQ(registry.active_groups(), 0u);
  EXPECT_EQ(registry.stats().groups_created, 1u);
  EXPECT_EQ(registry.stats().groups_torn_down, 1u);
}

TEST(SharedTree, SubscribersShareOneCollectionUnderDefaultLoss) {
  // N overlapping queries, default lossy radios.  Every subscriber of the
  // group receives the *same* round, so equal finalizers give equal values
  // even when loss makes the rounds themselves partial.
  const std::string query =
      "SELECT AVG(temp) FROM sensors WHERE temp > 0 EPOCH DURATION 2";
  constexpr std::size_t kOverlap = 5;

  auto run = [&](bool sharing) {
    core::PervasiveGridRuntime runtime(sharing_config(25, sharing, 7));
    std::vector<core::QueryOutcome> outcomes(kOverlap);
    std::size_t completed = 0;
    for (std::size_t i = 0; i < kOverlap; ++i) {
      runtime.submit_with_model(
          query, partition::SolutionModel::kTreeAggregate,
          [&outcomes, &completed, i](core::QueryOutcome out) {
            outcomes[i] = std::move(out);
            ++completed;
          });
    }
    runtime.simulator().run();
    EXPECT_EQ(completed, kOverlap);
    const auto stats = runtime.network().stats();
    if (sharing) {
      auto& registry = runtime.sharing()->registry();
      EXPECT_EQ(registry.stats().groups_created, 1u);
      EXPECT_EQ(registry.active_groups(), 0u);
      EXPECT_EQ(runtime.sharing()->stats().shared_queries, kOverlap);
    }
    return std::make_pair(outcomes, stats.transmissions);
  };

  const auto [shared, shared_tx] = run(true);
  const auto [unshared, unshared_tx] = run(false);
  for (std::size_t i = 0; i < kOverlap; ++i) {
    EXPECT_TRUE(shared[i].ok) << shared[i].error;
    EXPECT_TRUE(shared[i].shared);
    EXPECT_TRUE(unshared[i].ok) << unshared[i].error;
    EXPECT_FALSE(unshared[i].shared);
  }
  // The creator's round 0 is in flight when the other four arrive (their
  // envelopes land milliseconds later), so those four all join from round 1
  // and see identical rounds: equal values epoch for epoch.
  for (std::size_t i = 2; i < kOverlap; ++i) {
    ASSERT_EQ(shared[i].epochs.size(), shared[1].epochs.size());
    for (std::size_t e = 0; e < shared[1].epochs.size(); ++e) {
      EXPECT_EQ(shared[i].epochs[e].value, shared[1].epochs[e].value);
    }
  }
  // And the joiners' rounds are the creator's, offset by the join epoch.
  for (std::size_t e = 0; e + 1 < shared[0].epochs.size(); ++e) {
    EXPECT_EQ(shared[1].epochs[e].value, shared[0].epochs[e + 1].value);
  }
  // The point of the layer: one collection per round instead of N.
  EXPECT_LT(shared_tx, unshared_tx);
}

TEST(SharedTree, RefcountDropToZeroTearsTreeDown) {
  core::PervasiveGridRuntime runtime(sharing_config(16, true));
  core::QueryOutcome outcome;
  runtime.submit_with_model(
      "SELECT SUM(temp) FROM sensors EPOCH DURATION 1",
      partition::SolutionModel::kTreeAggregate,
      [&](core::QueryOutcome out) { outcome = std::move(out); });

  const std::string key =
      "agg|from=sensors|where=[]|epoch=1|cost=-";
  std::size_t mid_run_subscribers = 0;
  std::size_t mid_run_groups = 0;
  runtime.simulator().schedule(sim::SimTime::seconds(2.5), [&] {
    mid_run_subscribers = runtime.sharing()->registry().subscriber_count(key);
    mid_run_groups = runtime.sharing()->registry().active_groups();
  });
  runtime.simulator().run();

  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.shared);
  EXPECT_EQ(mid_run_groups, 1u) << "group alive while the query runs";
  EXPECT_EQ(mid_run_subscribers, 1u);

  const auto& stats = runtime.sharing()->registry().stats();
  EXPECT_EQ(runtime.sharing()->registry().active_groups(), 0u);
  EXPECT_EQ(runtime.sharing()->registry().subscriber_count(key), 0u);
  EXPECT_EQ(stats.groups_created, 1u);
  EXPECT_EQ(stats.groups_torn_down, 1u);
  // Exactly the query's epochs were collected — the cancelled schedule
  // never sampled again after the last unsubscribe.
  EXPECT_EQ(stats.collections, 4u);
  EXPECT_EQ(stats.fanouts, 4u);
  // The simulator drained: no orphaned epoch event kept the run alive.
  EXPECT_EQ(sim::check_kernel_pending_exact(runtime.simulator()),
            std::nullopt);
}

// ---------------------------------------------------------------------------
// Kill switch
// ---------------------------------------------------------------------------

struct Fingerprint {
  double value = 0.0;
  double energy_j = 0.0;
  double response_s = 0.0;
  double handheld_s = 0.0;
  net::NetworkStats net;
};

std::vector<Fingerprint> run_fingerprint_suite(core::RuntimeConfig config) {
  // None of these queries is shareable (no continuous aggregate), so an
  // enabled-but-untriggered sharing layer must not perturb any of them.
  static const char* kQueries[] = {
      "SELECT temp FROM sensors WHERE sensor = 3",
      "SELECT AVG(temp) FROM sensors",
      "SELECT temp FROM sensors WHERE sensor = 3 EPOCH DURATION 2",
  };
  core::PervasiveGridRuntime runtime(std::move(config));
  std::vector<Fingerprint> prints;
  for (const char* text : kQueries) {
    runtime.reset_energy();
    const auto outcome = runtime.submit_and_run(text);
    Fingerprint p;
    p.value = outcome.actual.value;
    p.energy_j = outcome.actual.energy_j;
    p.response_s = outcome.actual.response_s;
    p.handheld_s = outcome.handheld_response_s;
    p.net = runtime.network().stats();
    prints.push_back(p);
  }
  return prints;
}

void expect_identical(const std::vector<Fingerprint>& a,
                      const std::vector<Fingerprint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value, b[i].value) << "query " << i;
    EXPECT_EQ(a[i].energy_j, b[i].energy_j) << "query " << i;
    EXPECT_EQ(a[i].response_s, b[i].response_s) << "query " << i;
    EXPECT_EQ(a[i].handheld_s, b[i].handheld_s) << "query " << i;
    EXPECT_EQ(a[i].net.transmissions, b[i].net.transmissions) << "query " << i;
    EXPECT_EQ(a[i].net.delivered, b[i].net.delivered) << "query " << i;
    EXPECT_EQ(a[i].net.dropped, b[i].net.dropped) << "query " << i;
    EXPECT_EQ(a[i].net.bytes_sent, b[i].net.bytes_sent) << "query " << i;
    EXPECT_EQ(a[i].net.energy_j, b[i].net.energy_j) << "query " << i;
  }
}

TEST(SharingKillSwitch, DisabledMatchesDefaultConfig) {
  // `sharing.enabled = false` IS the default — the layer is never built and
  // the two configurations must be indistinguishable to the bit.
  auto defaults = sharing_config(16, false);
  auto explicit_off = sharing_config(16, false);
  explicit_off.sharing.share_trees = false;  // dormant knobs change nothing
  explicit_off.sharing.max_active = 3;
  explicit_off.sharing.max_queue = 1;
  expect_identical(run_fingerprint_suite(defaults),
                   run_fingerprint_suite(explicit_off));
}

TEST(SharingKillSwitch, EnabledButUntriggeredIsBitIdentical) {
  // Sharing on, but the workload contains nothing shareable and no caps are
  // set: admission admits synchronously (no events, no rng draws) and every
  // execution falls through to the legacy path.
  expect_identical(run_fingerprint_suite(sharing_config(16, false)),
                   run_fingerprint_suite(sharing_config(16, true)));
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(Admission, QueuesAndShedsUnderOverload) {
  auto config = sharing_config(16, true);
  config.sharing.max_active = 1;
  config.sharing.max_queue = 1;
  core::PervasiveGridRuntime runtime(config);

  // Three standing simple queries, distinct keys, submitted back to back:
  // the first takes the slot (4 epochs x 1 s), the second queues, and the
  // third finds the queue full and is shed.
  std::vector<core::QueryOutcome> outcomes(3);
  for (std::size_t i = 0; i < 3; ++i) {
    runtime.submit("SELECT temp FROM sensors WHERE sensor = " +
                       std::to_string(i) + " EPOCH DURATION 1",
                   [&outcomes, i](core::QueryOutcome out) {
                     outcomes[i] = std::move(out);
                   });
  }
  runtime.simulator().run();

  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_TRUE(outcomes[1].ok) << outcomes[1].error;
  EXPECT_FALSE(outcomes[2].ok);
  EXPECT_TRUE(outcomes[2].shed);
  EXPECT_NE(outcomes[2].error.find("overload"), std::string::npos);

  const auto& stats = runtime.sharing()->stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.shed_overload, 1u);
  EXPECT_EQ(runtime.sharing()->active(), 0u);
  EXPECT_EQ(runtime.sharing()->queue_depth(), 0u);
}

TEST(Admission, CompatibleArrivalsCoalescePastTheCap) {
  auto config = sharing_config(16, true);
  config.sharing.max_active = 1;
  core::PervasiveGridRuntime runtime(config);

  core::QueryOutcome creator;
  core::QueryOutcome rider;
  runtime.submit_with_model("SELECT AVG(temp) FROM sensors EPOCH DURATION 2",
                            partition::SolutionModel::kTreeAggregate,
                            [&](core::QueryOutcome out) { creator = out; });
  // Same canonical key (MAX rides the same partial state), submitted while
  // the creator holds the only slot — admitted past the cap, zero queueing.
  runtime.simulator().schedule(sim::SimTime::seconds(0.5), [&] {
    runtime.submit_with_model("SELECT MAX(temp) FROM sensors EPOCH DURATION 2",
                              partition::SolutionModel::kTreeAggregate,
                              [&](core::QueryOutcome out) { rider = out; });
  });
  runtime.simulator().run();

  EXPECT_TRUE(creator.ok) << creator.error;
  EXPECT_TRUE(rider.ok) << rider.error;
  EXPECT_TRUE(creator.shared);
  EXPECT_TRUE(rider.shared);
  const auto& stats = runtime.sharing()->stats();
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.shed_overload, 0u);
}

TEST(Admission, InfeasibleDeadlineBudgetShedsImmediately) {
  auto config = sharing_config(16, true);
  config.reliability.enabled = true;
  config.reliability.query_budget_s = 5.0;  // < 3 remaining epochs x 5 s
  core::PervasiveGridRuntime runtime(config);

  core::QueryOutcome outcome;
  runtime.submit("SELECT temp FROM sensors WHERE sensor = 1 EPOCH DURATION 5",
                 [&](core::QueryOutcome out) { outcome = std::move(out); });
  runtime.simulator().run();

  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.shed);
  EXPECT_NE(outcome.error.find("budget"), std::string::npos);
  EXPECT_EQ(runtime.sharing()->stats().shed_budget, 1u);
  EXPECT_EQ(runtime.sharing()->stats().admitted, 0u);
}

TEST(Admission, TightBudgetArrivalOvertakesSlackAndUnboundedInQueue) {
  // The arrival queue is ordered by remaining deadline budget, not FIFO: a
  // late arrival that can barely make its deadline runs before earlier
  // slack or unbounded arrivals, and equal deadlines keep arrival order.
  auto config = sharing_config(16, true);
  config.sharing.max_active = 1;
  config.sharing.max_queue = 8;
  core::PervasiveGridRuntime runtime(config);
  auto& sharing = *runtime.sharing();

  const query::CanonicalQuery unshared;  // shareable=false: never coalesces
  auto no_shed = [](const std::string& reason) {
    FAIL() << "unexpected shed: " << reason;
  };

  // Take the only slot so everything after queues.
  bool holder_running = false;
  sharing.admit(unshared, net::Budget::unlimited(), 0.0,
                [&] { holder_running = true; }, no_shed);
  ASSERT_TRUE(holder_running);

  // Queue order of arrival: slack (t+100 s), unbounded, tight (t+5 s),
  // then a second tight arrival at the same deadline.
  std::vector<std::string> order;
  auto enqueue = [&](const std::string& name, net::Budget budget) {
    sharing.admit(unshared, budget, 0.0,
                  [&order, name] { order.push_back(name); }, no_shed);
  };
  enqueue("slack", net::Budget::until(sim::SimTime::seconds(100.0)));
  enqueue("unbounded", net::Budget::unlimited());
  enqueue("tight-1", net::Budget::until(sim::SimTime::seconds(5.0)));
  enqueue("tight-2", net::Budget::until(sim::SimTime::seconds(5.0)));
  ASSERT_EQ(sharing.queue_depth(), 4u);
  ASSERT_TRUE(order.empty()) << "queued arrivals must not run yet";

  // Each completion frees the single slot and admits exactly one waiter:
  // both tight arrivals (FIFO between equals) before slack, slack before
  // unbounded.
  for (int i = 0; i < 4; ++i) sharing.on_complete();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "tight-1");
  EXPECT_EQ(order[1], "tight-2");
  EXPECT_EQ(order[2], "slack");
  EXPECT_EQ(order[3], "unbounded");
  EXPECT_EQ(sharing.queue_depth(), 0u);
}

// ---------------------------------------------------------------------------
// Grouping under chaos and mobility
// ---------------------------------------------------------------------------

class SharingChaosSweep
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SharingChaosSweep, GroupsStayCorrectAcrossPhases) {
  auto config = sharing_config(25, true, 11);
  config.reliability.enabled = true;
  core::PervasiveGridRuntime runtime(config);

  sim::ChaosEngine engine(runtime.network(), config.seed);
  sim::ChaosConfig chaos;
  chaos.horizon = sim::SimTime::seconds(30.0);
  chaos.fault_count = 10;
  chaos.mix = sim::mix_by_name(GetParam());
  engine.arm(chaos);

  // A couple of sensors wander (waypoint mobility) while faults cycle
  // through churn / loss / partition-and-heal phases.
  net::WaypointConfig walk;
  walk.width_m = config.sensors.width_m;
  walk.height_m = config.sensors.height_m;
  walk.horizon = sim::SimTime::seconds(25.0);
  const auto& sensor_nodes = runtime.sensors().sensors();
  std::vector<net::NodeId> walkers(
      sensor_nodes.begin(),
      sensor_nodes.begin() + std::min<std::size_t>(2, sensor_nodes.size()));
  net::WaypointMobility mobility(runtime.network(), walkers, walk,
                                 common::Rng(config.seed + 1));
  mobility.start();

  // Two groups x three subscribers each, all shareable.
  const char* kGroupQueries[] = {
      "SELECT AVG(temp) FROM sensors EPOCH DURATION 2",
      "SELECT AVG(temp) FROM sensors WHERE temp > 0 EPOCH DURATION 3",
  };
  std::vector<int> completions(6, 0);
  std::vector<core::QueryOutcome> outcomes(6);
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t s = 0; s < 3; ++s) {
      const std::size_t slot = g * 3 + s;
      runtime.simulator().schedule(
          sim::SimTime::seconds(1.0 + 0.25 * static_cast<double>(s)),
          [&runtime, &completions, &outcomes, slot, g, kGroupQueries] {
            runtime.submit_with_model(
                kGroupQueries[g], partition::SolutionModel::kTreeAggregate,
                [&completions, &outcomes, slot](core::QueryOutcome out) {
                  ++completions[slot];
                  outcomes[slot] = std::move(out);
                });
          });
    }
  }
  runtime.simulator().run();

  // Exactly-once completion, for every subscriber, whatever the faults did.
  for (std::size_t i = 0; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i], 1) << "subscriber " << i;
  }
  // Exactly two groups ever existed, and both are gone at drain.
  auto& registry = runtime.sharing()->registry();
  EXPECT_EQ(registry.stats().groups_created, 2u);
  EXPECT_EQ(registry.stats().groups_torn_down, 2u);
  EXPECT_EQ(registry.active_groups(), 0u);
  // The ledger stayed conserved through reattribution under faults.
  EXPECT_EQ(sim::check_ledger_conservation(runtime.telemetry()),
            std::nullopt);
  EXPECT_EQ(sim::check_no_open_spans(runtime.telemetry()), std::nullopt);
  EXPECT_EQ(sim::check_kernel_pending_exact(runtime.simulator()),
            std::nullopt);
}

INSTANTIATE_TEST_SUITE_P(Mixes, SharingChaosSweep,
                         ::testing::Values("disconnection-heavy",
                                           "lossy-mesh", "partition-storm"));

// ---------------------------------------------------------------------------
// Compose-side sub-plan dedup
// ---------------------------------------------------------------------------

class DedupFixture : public ::testing::Test {
 protected:
  DedupFixture()
      : net_(sim_, common::Rng(21)),
        platform_(net_),
        ontology_(discovery::make_standard_ontology()) {
    base_node_ = add_node(0);
    broker_id_ = platform_.register_agent(
        std::make_unique<discovery::BrokerAgent>("broker", base_node_,
                                                 ontology_));
    client_id_ = platform_.register_agent(std::make_unique<agent::LambdaAgent>(
        "client", base_node_,
        [](agent::LambdaAgent&, const agent::Envelope&) {}));
  }

  net::NodeId add_node(double x) {
    net::NodeConfig c;
    c.pos = {x, 0, 0};
    c.radio = net::LinkClass::wifi();
    c.unlimited_energy = true;
    return net_.add_node(c);
  }

  compose::ServiceProviderAgent* add_provider(const std::string& name,
                                              const std::string& cls,
                                              double x) {
    const auto node = add_node(x);
    discovery::ServiceDescription service;
    service.name = name;
    service.service_class = cls;
    auto provider = std::make_unique<compose::ServiceProviderAgent>(
        name, node, service, 1e8);
    auto* raw = provider.get();
    const auto id = platform_.register_agent(std::move(provider));
    raw->service().provider = id;
    discovery::advertise(platform_, id, broker_id_, raw->service());
    sim_.run();
    return raw;
  }

  static compose::TaskGraph parallel_tasks(std::size_t n,
                                           const std::string& cls) {
    compose::TaskGraph g;
    for (std::size_t i = 0; i < n; ++i) {
      compose::TaskSpec s;
      s.name = "task-" + std::to_string(i);
      s.service_class = cls;
      g.add_task(s);
    }
    return g;
  }

  sim::Simulator sim_;
  net::Network net_;
  agent::AgentPlatform platform_;
  discovery::Ontology ontology_;
  net::NodeId base_node_;
  agent::AgentId broker_id_;
  agent::AgentId client_id_;
};

TEST_F(DedupFixture, IdenticalSubPlansResolveOnce) {
  add_provider("worker", "ComputeService", 30);
  compose::CompositionManager manager(platform_, client_id_, broker_id_);
  compose::CompositionOptions options;
  options.dedup_discoveries = true;
  compose::CompositionReport report;
  manager.execute(parallel_tasks(3, "ComputeService"), options,
                  [&](compose::CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.tasks_completed, 3u);
  EXPECT_EQ(report.discoveries, 1u) << "one broker round-trip for the plan";
  EXPECT_EQ(report.dedup_hits, 2u);
  EXPECT_EQ(manager.dedup_in_flight(), 0u);
}

TEST_F(DedupFixture, KillSwitchKeepsPerTaskDiscovery) {
  add_provider("worker", "ComputeService", 30);
  compose::CompositionManager manager(platform_, client_id_, broker_id_);
  compose::CompositionReport report;
  manager.execute(parallel_tasks(3, "ComputeService"),
                  compose::CompositionOptions{},
                  [&](compose::CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.discoveries, 3u) << "dedup off: one round-trip per task";
  EXPECT_EQ(report.dedup_hits, 0u);
}

TEST_F(DedupFixture, ValidityWindowExpiresResolvedPlans) {
  add_provider("worker", "ComputeService", 30);
  compose::CompositionManager manager(platform_, client_id_, broker_id_);
  compose::CompositionOptions options;
  options.dedup_discoveries = true;
  options.dedup_validity = sim::SimTime::seconds(10.0);

  compose::CompositionReport first;
  manager.execute(parallel_tasks(2, "ComputeService"), options,
                  [&](compose::CompositionReport r) { first = r; });
  sim_.run();
  EXPECT_EQ(first.discoveries, 1u);
  EXPECT_EQ(manager.dedup_cached(), 1u);

  // Within the window: served from the cache, zero broker traffic.
  compose::CompositionReport second;
  manager.execute(parallel_tasks(2, "ComputeService"), options,
                  [&](compose::CompositionReport r) { second = r; });
  sim_.run();
  EXPECT_EQ(second.discoveries, 0u);
  EXPECT_EQ(second.dedup_hits, 2u);

  // Past the window the entry is stale and the sub-plan re-resolves.
  compose::CompositionReport third;
  sim_.schedule(sim_.now() + sim::SimTime::seconds(11.0), [&] {
    manager.execute(parallel_tasks(2, "ComputeService"), options,
                    [&](compose::CompositionReport r) { third = r; });
  });
  sim_.run();
  EXPECT_EQ(third.discoveries, 1u);
  EXPECT_TRUE(third.success);
}

TEST_F(DedupFixture, SharedResultsStillFilterPerConsumer) {
  // Provider churn mid-plan: the first provider fails every invocation, so
  // each task that bound it must re-bind to the alternate — the shared
  // match list is filtered per consumer, never mutated for the group.
  auto* flaky = add_provider("flaky", "PdeSolver", 30);
  flaky->set_failure_probability(1.0, common::Rng(5));
  add_provider("steady", "PdeSolver", 40);

  compose::CompositionManager manager(platform_, client_id_, broker_id_);
  compose::CompositionOptions options;
  options.dedup_discoveries = true;
  compose::CompositionReport report;
  manager.execute(parallel_tasks(2, "PdeSolver"), options,
                  [&](compose::CompositionReport r) { report = r; });
  sim_.run();
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.tasks_completed, 2u);
  EXPECT_GE(report.rebinds, 1u);
  EXPECT_EQ(manager.dedup_in_flight(), 0u);
}

}  // namespace
}  // namespace pgrid
