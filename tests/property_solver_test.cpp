// Property tests for the PDE solvers: discrete maximum principle, solver
// agreement, symmetry preservation, and flop-count monotonicity across a
// parameterized sweep of problem sizes and solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/thread_pool.hpp"
#include "grid/solvers.hpp"

namespace pgrid::grid {
namespace {

struct SolverCase {
  std::size_t n;
  bool three_d;
  bool use_cg;
  bool parallel;
};

class SolverProperty : public ::testing::TestWithParam<SolverCase> {
 protected:
  HeatProblem make_problem(double hot = 300.0) const {
    const auto& param = GetParam();
    HeatProblem problem(param.n, param.n, param.three_d ? param.n : 1, 20.0);
    problem.fix(param.n / 2, param.n / 2, param.three_d ? param.n / 2 : 0,
                hot);
    return problem;
  }

  SolveStats solve(const HeatProblem& problem, std::vector<double>& u) const {
    common::ThreadPool pool(3);
    common::ThreadPool* pool_ptr = GetParam().parallel ? &pool : nullptr;
    if (GetParam().use_cg) {
      return cg_solve(problem, u, 1e-10, 20000, pool_ptr);
    }
    return jacobi_solve(problem, u, 1e-8, 500000, pool_ptr);
  }
};

TEST_P(SolverProperty, Converges) {
  auto problem = make_problem();
  std::vector<double> u;
  const auto stats = solve(problem, u);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.flops, 0.0);
}

TEST_P(SolverProperty, MaximumPrinciple) {
  auto problem = make_problem(450.0);
  std::vector<double> u;
  solve(problem, u);
  for (double v : u) {
    EXPECT_GE(v, 20.0 - 1e-6);
    EXPECT_LE(v, 450.0 + 1e-6);
  }
}

TEST_P(SolverProperty, DirichletCellsUntouched) {
  auto problem = make_problem();
  std::vector<double> u;
  solve(problem, u);
  for (std::size_t i = 0; i < problem.cells(); ++i) {
    if (problem.is_fixed(i)) {
      EXPECT_DOUBLE_EQ(u[i], problem.fixed_value(i));
    }
  }
}

TEST_P(SolverProperty, MirrorSymmetryPreserved) {
  // A centred hot spot on a square grid gives an x-mirror-symmetric field.
  const auto& param = GetParam();
  if (param.n % 2 == 0) GTEST_SKIP() << "needs an exact centre";
  auto problem = make_problem();
  std::vector<double> u;
  solve(problem, u);
  const std::size_t nz = param.three_d ? param.n : 1;
  for (std::size_t iz = 0; iz < nz; ++iz) {
    for (std::size_t iy = 0; iy < param.n; ++iy) {
      for (std::size_t ix = 0; ix < param.n / 2; ++ix) {
        const double left = u[problem.index(ix, iy, iz)];
        const double right = u[problem.index(param.n - 1 - ix, iy, iz)];
        EXPECT_NEAR(left, right, 1e-5);
      }
    }
  }
}

TEST_P(SolverProperty, ResidualBelowTolerance) {
  auto problem = make_problem();
  std::vector<double> u;
  const auto stats = solve(problem, u);
  // Independent check: every free cell is (nearly) the mean of neighbours.
  std::size_t nb[6];
  double worst = 0.0;
  for (std::size_t i = 0; i < problem.cells(); ++i) {
    if (problem.is_fixed(i)) continue;
    const std::size_t count = problem.neighbors(i, nb);
    double sum = 0.0;
    for (std::size_t k = 0; k < count; ++k) sum += u[nb[k]];
    worst = std::max(worst,
                     std::abs(u[i] - sum / static_cast<double>(count)));
  }
  EXPECT_LT(worst, 1e-3) << "converged=" << stats.converged;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSolvers, SolverProperty,
    ::testing::Values(SolverCase{9, false, true, false},
                      SolverCase{9, false, false, false},
                      SolverCase{17, false, true, false},
                      SolverCase{17, false, false, true},
                      SolverCase{17, false, true, true},
                      SolverCase{9, true, true, false},
                      SolverCase{9, true, true, true},
                      SolverCase{25, false, true, false}),
    [](const ::testing::TestParamInfo<SolverCase>& info) {
      std::string name = "n" + std::to_string(info.param.n);
      name += info.param.three_d ? "_3d" : "_2d";
      name += info.param.use_cg ? "_cg" : "_jacobi";
      name += info.param.parallel ? "_mt" : "_st";
      return name;
    });

}  // namespace
}  // namespace pgrid::grid
