// Property tests for the topology acceleration layer: the spatial-index
// neighbours, the CSR snapshot and the LRU route cache must be
// bit-identical to the naive scan / fresh-Dijkstra oracles for every
// topology, under seeded mobility, churn, partition-heal and full chaos
// schedules.  Seeds reuse the chaos harness's sweep range (1..25).
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "net/churn.hpp"
#include "net/mobility.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "sim/chaos.hpp"
#include "sim/simulator.hpp"

namespace pgrid::net {
namespace {

/// Fully independent route oracle: Dijkstra with cost = (hops, distance)
/// re-implemented here over the naive neighbour scan, sharing no code with
/// routing.cpp.
std::vector<NodeId> oracle_route(const Network& net, NodeId src, NodeId dst) {
  const std::size_t n = net.size();
  if (src >= n || dst >= n || !net.alive(src) || !net.alive(dst)) return {};
  if (src == dst) return {src};
  constexpr std::size_t kFar = std::numeric_limits<std::size_t>::max();
  using Cost = std::pair<std::size_t, double>;
  std::vector<Cost> best(n, {kFar, 0.0});
  std::vector<NodeId> prev(n, kInvalidNode);
  using Entry = std::pair<Cost, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  best[src] = {0, 0.0};
  pq.push({{0, 0.0}, src});
  while (!pq.empty()) {
    auto [cost, at] = pq.top();
    pq.pop();
    if (cost > best[at]) continue;
    if (at == dst) break;
    for (NodeId next : net.neighbors_naive(at)) {
      const double d = distance(net.node(at).pos, net.node(next).pos);
      Cost candidate{cost.first + 1, cost.second + d};
      if (candidate < best[next]) {
        best[next] = candidate;
        prev[next] = at;
        pq.push({candidate, next});
      }
    }
  }
  if (best[dst].first == kFar) return {};
  std::vector<NodeId> route;
  for (NodeId at = dst; at != kInvalidNode; at = prev[at]) {
    route.push_back(at);
    if (at == src) break;
  }
  std::reverse(route.begin(), route.end());
  if (route.front() != src) return {};
  return route;
}

/// Asserts indexed neighbours, snapshot rows and cached routes all agree
/// with their oracles over the whole deployment right now.
void expect_accel_matches_oracle(const Network& net, common::Rng& pairs,
                                 std::size_t route_probes) {
  const auto& snapshot = net.topology_snapshot();
  for (NodeId id = 0; id < net.size(); ++id) {
    const auto naive = net.neighbors_naive(id);
    const auto indexed = net.neighbors(id);
    ASSERT_EQ(indexed, naive) << "spatial index diverged at node " << id;
    const auto row = snapshot.row(id);
    ASSERT_TRUE(std::equal(row.begin(), row.end(), naive.begin(),
                           naive.end()))
        << "snapshot row diverged at node " << id;
  }
  for (std::size_t probe = 0; probe < route_probes; ++probe) {
    const auto src = static_cast<NodeId>(pairs.index(net.size()));
    const auto dst = static_cast<NodeId>(pairs.index(net.size()));
    const auto expected = oracle_route(net, src, dst);
    ASSERT_EQ(shortest_path(net, src, dst), expected)
        << "snapshot Dijkstra diverged for " << src << " -> " << dst;
    // Twice: the first call may compute-and-fill, the second must hit.
    ASSERT_EQ(cached_shortest_path(net, src, dst), expected)
        << "cold cached route diverged for " << src << " -> " << dst;
    ASSERT_EQ(cached_shortest_path(net, src, dst), expected)
        << "warm cached route diverged for " << src << " -> " << dst;
  }
}

struct TopologyCase {
  std::uint64_t seed;
  std::size_t nodes;
  bool grid_placement;
};

class TopologyProperty : public ::testing::TestWithParam<TopologyCase> {
 protected:
  TopologyProperty() : net_(sim_, common::Rng(GetParam().seed)) {
    NodeConfig config;
    config.kind = NodeKind::kSensor;
    config.radio = LinkClass::sensor_radio();
    config.battery_j = 0.05;  // small budget: some nodes die mid-run
    common::Rng placement(GetParam().seed ^ 0xabcdef);
    side_ = 15.0 * std::ceil(std::sqrt(double(GetParam().nodes)));
    if (GetParam().grid_placement) {
      ids_ = deploy_grid(net_, GetParam().nodes, side_, side_, config);
    } else {
      ids_ = deploy_random(net_, GetParam().nodes, side_, side_, config,
                           placement);
    }
    // A mixed deployment: a mains-powered wifi base and a wired backhaul
    // pair, so wired peers, heterogeneous ranges and unlimited energy are
    // all in play.
    NodeConfig base;
    base.kind = NodeKind::kBaseStation;
    base.radio = LinkClass::wifi();
    base.pos = {-5.0, -5.0, 0.0};
    base.unlimited_energy = true;
    base_ = net_.add_node(base);
    NodeConfig grid_machine;
    grid_machine.kind = NodeKind::kGrid;
    grid_machine.radio = LinkClass::wired();
    grid_machine.pos = {-20.0, -20.0, 0.0};
    grid_machine.unlimited_energy = true;
    grid_ = net_.add_node(grid_machine);
    net_.add_wired_link(base_, grid_);
  }

  sim::Simulator sim_;
  Network net_;
  std::vector<NodeId> ids_;
  NodeId base_ = kInvalidNode;
  NodeId grid_ = kInvalidNode;
  double side_ = 0.0;
};

TEST_P(TopologyProperty, IndexedNeighborsMatchNaiveUnderMobilityAndChurn) {
  WaypointConfig wconfig;
  wconfig.width_m = side_;
  wconfig.height_m = side_;
  wconfig.horizon = sim::SimTime::seconds(30.0);
  std::vector<NodeId> walkers(ids_.begin(),
                              ids_.begin() + std::min<std::size_t>(
                                                 ids_.size(), 8));
  WaypointMobility mobility(net_, walkers, wconfig,
                            common::Rng(GetParam().seed + 17));
  mobility.start();

  ChurnConfig cconfig;
  cconfig.mean_up = sim::SimTime::seconds(6.0);
  cconfig.mean_down = sim::SimTime::seconds(3.0);
  cconfig.horizon = sim::SimTime::seconds(30.0);
  NodeChurn churn(net_, ids_, cconfig, common::Rng(GetParam().seed + 29));
  churn.start();

  // Background traffic drains batteries, so liveness-version invalidation
  // (battery death without a topology bump) is exercised too.
  common::Rng traffic(GetParam().seed + 5);
  for (int i = 0; i < 40; ++i) {
    sim_.schedule(sim::SimTime::seconds(0.5 * i), [this, &traffic] {
      const NodeId a = ids_[traffic.index(ids_.size())];
      const NodeId b = ids_[traffic.index(ids_.size())];
      net_.transmit(a, b, 256, [](bool) {});
    });
  }

  common::Rng pairs(GetParam().seed + 99);
  for (int probe = 0; probe < 10; ++probe) {
    sim_.schedule(sim::SimTime::seconds(1.0 + 3.0 * probe), [this, &pairs] {
      expect_accel_matches_oracle(net_, pairs, 6);
    });
  }
  sim_.run();
  EXPECT_GT(net_.topology_stats().neighbor_queries, 0u);
}

TEST_P(TopologyProperty, CachedRoutesMatchOracleUnderChaosSchedules) {
  // Full chaos: blackouts, partitions that cut and heal, crashes with
  // reboot energy loss — every fault bumps a version the cache keys on.
  sim::ChaosEngine engine(net_, GetParam().seed);
  sim::ChaosConfig config;
  config.horizon = sim::SimTime::seconds(40.0);
  config.fault_count = 14;
  config.mix = sim::ChaosMix::partition_storm();
  engine.arm(config);

  common::Rng pairs(GetParam().seed + 7);
  for (int probe = 0; probe < 12; ++probe) {
    sim_.schedule(sim::SimTime::seconds(0.5 + 3.5 * probe), [this, &pairs] {
      expect_accel_matches_oracle(net_, pairs, 5);
    });
  }
  sim_.run();

  // Post-heal: every fault window has expired; the accelerated structures
  // must converge back to the healed topology.
  ASSERT_TRUE(engine.quiescent());
  common::Rng healed(GetParam().seed + 13);
  expect_accel_matches_oracle(net_, healed, 10);
  EXPECT_GT(net_.route_cache().stats().hits, 0u);
}

TEST_P(TopologyProperty, RouteCacheInvalidatesOnMovesChurnAndDeath) {
  const NodeId src = ids_.front();
  const NodeId dst = ids_.back();
  common::Rng pairs(GetParam().seed + 3);

  // Mobility invalidation: teleport a mid-route node far away.
  auto before = cached_shortest_path(net_, src, dst);
  if (before.size() > 2) {
    const NodeId hop = before[before.size() / 2];
    net_.move_node(hop, Vec3{side_ * 4.0, side_ * 4.0, 0.0});
    EXPECT_EQ(cached_shortest_path(net_, src, dst),
              oracle_route(net_, src, dst));
    expect_accel_matches_oracle(net_, pairs, 4);
  }

  // Churn invalidation.
  net_.set_node_up(dst, false);
  EXPECT_TRUE(cached_shortest_path(net_, src, dst).empty());
  net_.set_node_up(dst, true);
  EXPECT_EQ(cached_shortest_path(net_, src, dst),
            oracle_route(net_, src, dst));

  // Battery-death invalidation: exhaust the destination without any
  // topology bump; the cache must not serve the stale route.
  ASSERT_FALSE(net_.node(dst).energy.is_unlimited());
  const auto live_route = cached_shortest_path(net_, src, dst);
  net_.drain_energy(dst, net_.node(dst).energy.capacity() + 1.0);
  ASSERT_TRUE(net_.node(dst).energy.dead());
  EXPECT_TRUE(cached_shortest_path(net_, src, dst).empty())
      << "stale route served across a battery death (was "
      << live_route.size() << " hops)";
  expect_accel_matches_oracle(net_, pairs, 4);
}

TEST_P(TopologyProperty, WiredPairIndexMatchesLinearScanSemantics) {
  // Duplicate links on one pair: the first added must stay authoritative
  // for link_between and for up/down toggles (historical first-match).
  LinkClass fast = LinkClass::wired();
  fast.bandwidth_bps = 200e6;
  LinkClass slow = LinkClass::wired();
  slow.bandwidth_bps = 1e6;
  net_.add_wired_link(grid_, ids_.front(), fast);
  net_.add_wired_link(ids_.front(), grid_, slow);  // duplicate, reversed

  auto link = net_.link_between(grid_, ids_.front());
  ASSERT_TRUE(link.has_value());
  EXPECT_EQ(link->bandwidth_bps, 200e6) << "first link added must win";

  EXPECT_TRUE(net_.connected(grid_, ids_.front()));
  net_.set_wired_link_up(ids_.front(), grid_, false);
  EXPECT_FALSE(net_.connected(grid_, ids_.front()));
  EXPECT_FALSE(net_.link_between(grid_, ids_.front()).has_value());
  net_.set_wired_link_up(grid_, ids_.front(), true);
  EXPECT_TRUE(net_.connected(grid_, ids_.front()));

  // Unknown pair: no-op, exactly like the scan finding nothing.
  net_.set_wired_link_up(ids_.front(), ids_.back(), false);

  common::Rng pairs(GetParam().seed + 21);
  expect_accel_matches_oracle(net_, pairs, 4);
}

TEST_P(TopologyProperty, SinkTreeMaxDepthMatchesDepthScan) {
  SinkTree tree(net_, base_);
  std::size_t deepest = 0;
  for (NodeId id = 0; id < net_.size(); ++id) {
    if (tree.contains(id)) deepest = std::max(deepest, tree.depth(id));
  }
  EXPECT_EQ(tree.max_depth(), deepest);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, TopologyProperty,
    ::testing::Values(TopologyCase{1, 25, true}, TopologyCase{2, 49, true},
                      TopologyCase{3, 36, false}, TopologyCase{7, 64, false},
                      TopologyCase{11, 80, false},
                      TopologyCase{25, 100, true}),
    [](const ::testing::TestParamInfo<TopologyCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nodes) +
             (info.param.grid_placement ? "_grid" : "_random");
    });

}  // namespace
}  // namespace pgrid::net
