// Unit tests for the query language: lexing/parsing of the paper's format,
// predicate evaluation, normalization, and the four-way classification.
#include <gtest/gtest.h>

#include "query/classifier.hpp"
#include "query/parser.hpp"

namespace pgrid::query {
namespace {

// ---------------------------------------------------------------------------
// Parser: the paper's own example queries
// ---------------------------------------------------------------------------

TEST(Parser, PaperSimpleQuery) {
  // "Return temperature at Sensor # 10"
  auto r = parse_query("SELECT temp FROM sensors WHERE sensor = 10");
  ASSERT_TRUE(r.ok()) << r.error();
  const Query& q = r.value();
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].kind, SelectItem::Kind::kAttribute);
  EXPECT_EQ(q.select[0].name, "temp");
  EXPECT_EQ(q.from, "sensors");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].attribute, "sensor");
  EXPECT_EQ(q.where[0].op, PredOp::kEq);
  EXPECT_DOUBLE_EQ(q.where[0].number, 10.0);
  EXPECT_FALSE(q.epoch_duration_s.has_value());
  EXPECT_EQ(q.cost.metric, CostMetric::kNone);
}

TEST(Parser, PaperAggregateQuery) {
  // "Return Average Temperature in room # 210"
  auto r = parse_query("SELECT AVG(temp) FROM sensors WHERE room = 210");
  ASSERT_TRUE(r.ok()) << r.error();
  const Query& q = r.value();
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].kind, SelectItem::Kind::kFunction);
  EXPECT_EQ(q.select[0].name, "AVG");
  EXPECT_EQ(q.select[0].args, std::vector<std::string>{"temp"});
}

TEST(Parser, PaperComplexQuery) {
  // "Find Temperature Distribution in room #210"
  auto r = parse_query(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors WHERE room = 210");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.value().has_function());
  EXPECT_EQ(r.value().function()->name, "TEMP_DISTRIBUTION");
}

TEST(Parser, PaperContinuousQuery) {
  // "Return temperature at Sensor #10 every 10 seconds"
  auto r = parse_query(
      "SELECT temp FROM sensors WHERE sensor = 10 EPOCH DURATION 10");
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_TRUE(r.value().epoch_duration_s.has_value());
  EXPECT_DOUBLE_EQ(*r.value().epoch_duration_s, 10.0);
}

TEST(Parser, BracedFormFromThePaper) {
  // The paper writes: SELECT {func(), attrs} from sensors WHERE {selPreds}
  // COST {cost limitation} EPOCH DURATION i
  auto r = parse_query(
      "SELECT {AVG(temp)} from sensors WHERE {room = 210} "
      "COST {energy 0.5} EPOCH DURATION 5");
  ASSERT_TRUE(r.ok()) << r.error();
  const Query& q = r.value();
  EXPECT_EQ(q.select[0].name, "AVG");
  EXPECT_EQ(q.cost.metric, CostMetric::kEnergy);
  EXPECT_DOUBLE_EQ(q.cost.limit, 0.5);
  EXPECT_DOUBLE_EQ(*q.epoch_duration_s, 5.0);
}

TEST(Parser, CostMetricVariants) {
  auto energy = parse_query("SELECT t FROM s COST energy < 0.25");
  ASSERT_TRUE(energy.ok());
  EXPECT_EQ(energy.value().cost.metric, CostMetric::kEnergy);
  EXPECT_DOUBLE_EQ(energy.value().cost.limit, 0.25);

  auto time = parse_query("SELECT t FROM s COST time 2.5");
  ASSERT_TRUE(time.ok());
  EXPECT_EQ(time.value().cost.metric, CostMetric::kTime);

  auto acc = parse_query("SELECT t FROM s COST accuracy 0.9");
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(acc.value().cost.metric, CostMetric::kAccuracy);

  EXPECT_FALSE(parse_query("SELECT t FROM s COST watts 5").ok());
}

TEST(Parser, MultipleSelectItemsAndPredicates) {
  auto r = parse_query(
      "SELECT temp, humidity, MAX(temp) FROM sensors "
      "WHERE floor = 2 AND temp > 30 AND building != 7");
  ASSERT_TRUE(r.ok()) << r.error();
  const Query& q = r.value();
  EXPECT_EQ(q.select.size(), 3u);
  EXPECT_EQ(q.select[2].kind, SelectItem::Kind::kFunction);
  ASSERT_EQ(q.where.size(), 3u);
  EXPECT_EQ(q.where[1].op, PredOp::kGt);
  EXPECT_EQ(q.where[2].op, PredOp::kNe);
}

TEST(Parser, StringPredicate) {
  auto r = parse_query("SELECT temp FROM sensors WHERE wing = 'north'");
  ASSERT_TRUE(r.ok()) << r.error();
  const auto& pred = r.value().where[0];
  EXPECT_FALSE(pred.numeric);
  EXPECT_EQ(pred.text, "north");
  EXPECT_TRUE(pred.eval(std::string("north")));
  EXPECT_FALSE(pred.eval(std::string("south")));
}

TEST(Parser, FunctionWithMultipleArgs) {
  auto r = parse_query("SELECT CORRELATE(temp, humidity) FROM sensors");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().select[0].args.size(), 2u);
}

TEST(Parser, FunctionWithNoArgs) {
  auto r = parse_query("SELECT COUNT() FROM sensors");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().select[0].kind, SelectItem::Kind::kFunction);
  EXPECT_TRUE(r.value().select[0].args.empty());
}

TEST(Parser, KeywordsAreCaseInsensitive) {
  auto r = parse_query("select avg(temp) from sensors where room = 1 "
                       "cost energy 1 epoch duration 2");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.value().epoch_duration_s.has_value());
}

TEST(Parser, SensorHashStyleTolerated) {
  auto r = parse_query("SELECT temp FROM sensors WHERE sensor # = 10");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_DOUBLE_EQ(r.value().where[0].number, 10.0);
}

TEST(Parser, Rejections) {
  EXPECT_FALSE(parse_query("").ok());
  EXPECT_FALSE(parse_query("FROM sensors").ok());
  EXPECT_FALSE(parse_query("SELECT FROM sensors").ok());
  EXPECT_FALSE(parse_query("SELECT temp").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors WHERE").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors WHERE x ~ 3").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors EPOCH DURATION -1").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors EPOCH DURATION 0").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors garbage here").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors WHERE s = 'open").ok());
}

TEST(Parser, ErrorsCarryOffsets) {
  auto r = parse_query("SELECT temp FRUM sensors");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("offset"), std::string::npos);
}

TEST(Ast, PredicateNumericOps) {
  Predicate p;
  p.attribute = "temp";
  p.op = PredOp::kGe;
  p.number = 30.0;
  EXPECT_TRUE(p.eval(30.0));
  EXPECT_TRUE(p.eval(31.0));
  EXPECT_FALSE(p.eval(29.9));
  EXPECT_FALSE(p.eval(std::string("30")));  // type mismatch
}

TEST(Ast, ToStringRoundTripsThroughParser) {
  auto r = parse_query(
      "SELECT AVG(temp) FROM sensors WHERE room = 210 AND temp > 25 "
      "COST time 3 EPOCH DURATION 10");
  ASSERT_TRUE(r.ok());
  const std::string normalized = to_string(r.value());
  auto r2 = parse_query(normalized);
  ASSERT_TRUE(r2.ok()) << normalized << " -> " << r2.error();
  EXPECT_EQ(to_string(r2.value()), normalized);
}

TEST(Ast, PredicateOnFindsAttribute) {
  auto r = parse_query("SELECT t FROM s WHERE room = 2 AND sensor = 7");
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r.value().predicate_on("sensor"), nullptr);
  EXPECT_DOUBLE_EQ(r.value().predicate_on("sensor")->number, 7.0);
  EXPECT_EQ(r.value().predicate_on("nope"), nullptr);
}

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

class ClassifierTest : public ::testing::Test {
 protected:
  Classification classify(const std::string& text) {
    auto r = parse_query(text);
    EXPECT_TRUE(r.ok()) << r.error();
    return classifier_.classify(r.value());
  }
  QueryClassifier classifier_;
};

TEST_F(ClassifierTest, SimpleQuery) {
  auto c = classify("SELECT temp FROM sensors WHERE sensor = 10");
  EXPECT_EQ(c.primary, QueryClass::kSimple);
  EXPECT_EQ(c.inner, QueryClass::kSimple);
  EXPECT_FALSE(c.continuous);
}

TEST_F(ClassifierTest, AggregateQueryAllFunctions) {
  const struct {
    const char* name;
    sensornet::AggregateFunction fn;
  } cases[] = {
      {"MIN", sensornet::AggregateFunction::kMin},
      {"MAX", sensornet::AggregateFunction::kMax},
      {"AVG", sensornet::AggregateFunction::kAvg},
      {"SUM", sensornet::AggregateFunction::kSum},
      {"COUNT", sensornet::AggregateFunction::kCount},
  };
  for (const auto& test_case : cases) {
    auto c = classify(std::string("SELECT ") + test_case.name +
                      "(temp) FROM sensors WHERE room = 210");
    EXPECT_EQ(c.primary, QueryClass::kAggregate) << test_case.name;
    EXPECT_EQ(c.aggregate, test_case.fn) << test_case.name;
  }
}

TEST_F(ClassifierTest, ComplexQuery) {
  auto c = classify(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors WHERE room = 210");
  EXPECT_EQ(c.primary, QueryClass::kComplex);
  EXPECT_EQ(c.complex_function, "TEMP_DISTRIBUTION");
}

TEST_F(ClassifierTest, ContinuousWrapsInnerType) {
  auto c = classify(
      "SELECT temp FROM sensors WHERE sensor = 10 EPOCH DURATION 10");
  EXPECT_EQ(c.primary, QueryClass::kContinuous);
  EXPECT_EQ(c.inner, QueryClass::kSimple);
  EXPECT_TRUE(c.continuous);

  auto c2 = classify(
      "SELECT AVG(temp) FROM sensors WHERE room = 210 EPOCH DURATION 5");
  EXPECT_EQ(c2.primary, QueryClass::kContinuous);
  EXPECT_EQ(c2.inner, QueryClass::kAggregate);
}

TEST_F(ClassifierTest, ArbitraryFunctionClassifiesComplex) {
  // "we allow for any arbitrary function to be specified"
  auto c = classify("SELECT FFT(temp) FROM sensors");
  EXPECT_EQ(c.primary, QueryClass::kComplex);
  EXPECT_EQ(c.complex_function, "FFT");
}

TEST_F(ClassifierTest, RegisteredComplexFunction) {
  classifier_.register_complex_function("navier_stokes");
  EXPECT_TRUE(classifier_.knows_complex("NAVIER_STOKES"));
  EXPECT_TRUE(classifier_.knows_complex("navier_stokes"));
  EXPECT_FALSE(classifier_.knows_complex("fft2"));
}

TEST_F(ClassifierTest, AggregateNameCaseInsensitive) {
  auto c = classify("SELECT avg(temp) FROM sensors");
  EXPECT_EQ(c.primary, QueryClass::kAggregate);
}

}  // namespace
}  // namespace pgrid::query
