// Unit tests for the query language: lexing/parsing of the paper's format,
// predicate evaluation, normalization, and the four-way classification.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "query/canonical.hpp"
#include "query/classifier.hpp"
#include "query/parser.hpp"

namespace pgrid::query {
namespace {

// ---------------------------------------------------------------------------
// Parser: the paper's own example queries
// ---------------------------------------------------------------------------

TEST(Parser, PaperSimpleQuery) {
  // "Return temperature at Sensor # 10"
  auto r = parse_query("SELECT temp FROM sensors WHERE sensor = 10");
  ASSERT_TRUE(r.ok()) << r.error();
  const Query& q = r.value();
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].kind, SelectItem::Kind::kAttribute);
  EXPECT_EQ(q.select[0].name, "temp");
  EXPECT_EQ(q.from, "sensors");
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].attribute, "sensor");
  EXPECT_EQ(q.where[0].op, PredOp::kEq);
  EXPECT_DOUBLE_EQ(q.where[0].number, 10.0);
  EXPECT_FALSE(q.epoch_duration_s.has_value());
  EXPECT_EQ(q.cost.metric, CostMetric::kNone);
}

TEST(Parser, PaperAggregateQuery) {
  // "Return Average Temperature in room # 210"
  auto r = parse_query("SELECT AVG(temp) FROM sensors WHERE room = 210");
  ASSERT_TRUE(r.ok()) << r.error();
  const Query& q = r.value();
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].kind, SelectItem::Kind::kFunction);
  EXPECT_EQ(q.select[0].name, "AVG");
  EXPECT_EQ(q.select[0].args, std::vector<std::string>{"temp"});
}

TEST(Parser, PaperComplexQuery) {
  // "Find Temperature Distribution in room #210"
  auto r = parse_query(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors WHERE room = 210");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.value().has_function());
  EXPECT_EQ(r.value().function()->name, "TEMP_DISTRIBUTION");
}

TEST(Parser, PaperContinuousQuery) {
  // "Return temperature at Sensor #10 every 10 seconds"
  auto r = parse_query(
      "SELECT temp FROM sensors WHERE sensor = 10 EPOCH DURATION 10");
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_TRUE(r.value().epoch_duration_s.has_value());
  EXPECT_DOUBLE_EQ(*r.value().epoch_duration_s, 10.0);
}

TEST(Parser, BracedFormFromThePaper) {
  // The paper writes: SELECT {func(), attrs} from sensors WHERE {selPreds}
  // COST {cost limitation} EPOCH DURATION i
  auto r = parse_query(
      "SELECT {AVG(temp)} from sensors WHERE {room = 210} "
      "COST {energy 0.5} EPOCH DURATION 5");
  ASSERT_TRUE(r.ok()) << r.error();
  const Query& q = r.value();
  EXPECT_EQ(q.select[0].name, "AVG");
  EXPECT_EQ(q.cost.metric, CostMetric::kEnergy);
  EXPECT_DOUBLE_EQ(q.cost.limit, 0.5);
  EXPECT_DOUBLE_EQ(*q.epoch_duration_s, 5.0);
}

TEST(Parser, CostMetricVariants) {
  auto energy = parse_query("SELECT t FROM s COST energy < 0.25");
  ASSERT_TRUE(energy.ok());
  EXPECT_EQ(energy.value().cost.metric, CostMetric::kEnergy);
  EXPECT_DOUBLE_EQ(energy.value().cost.limit, 0.25);

  auto time = parse_query("SELECT t FROM s COST time 2.5");
  ASSERT_TRUE(time.ok());
  EXPECT_EQ(time.value().cost.metric, CostMetric::kTime);

  auto acc = parse_query("SELECT t FROM s COST accuracy 0.9");
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(acc.value().cost.metric, CostMetric::kAccuracy);

  EXPECT_FALSE(parse_query("SELECT t FROM s COST watts 5").ok());
}

TEST(Parser, MultipleSelectItemsAndPredicates) {
  auto r = parse_query(
      "SELECT temp, humidity, MAX(temp) FROM sensors "
      "WHERE floor = 2 AND temp > 30 AND building != 7");
  ASSERT_TRUE(r.ok()) << r.error();
  const Query& q = r.value();
  EXPECT_EQ(q.select.size(), 3u);
  EXPECT_EQ(q.select[2].kind, SelectItem::Kind::kFunction);
  ASSERT_EQ(q.where.size(), 3u);
  EXPECT_EQ(q.where[1].op, PredOp::kGt);
  EXPECT_EQ(q.where[2].op, PredOp::kNe);
}

TEST(Parser, StringPredicate) {
  auto r = parse_query("SELECT temp FROM sensors WHERE wing = 'north'");
  ASSERT_TRUE(r.ok()) << r.error();
  const auto& pred = r.value().where[0];
  EXPECT_FALSE(pred.numeric);
  EXPECT_EQ(pred.text, "north");
  EXPECT_TRUE(pred.eval(std::string("north")));
  EXPECT_FALSE(pred.eval(std::string("south")));
}

TEST(Parser, FunctionWithMultipleArgs) {
  auto r = parse_query("SELECT CORRELATE(temp, humidity) FROM sensors");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().select[0].args.size(), 2u);
}

TEST(Parser, FunctionWithNoArgs) {
  auto r = parse_query("SELECT COUNT() FROM sensors");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().select[0].kind, SelectItem::Kind::kFunction);
  EXPECT_TRUE(r.value().select[0].args.empty());
}

TEST(Parser, KeywordsAreCaseInsensitive) {
  auto r = parse_query("select avg(temp) from sensors where room = 1 "
                       "cost energy 1 epoch duration 2");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.value().epoch_duration_s.has_value());
}

TEST(Parser, SensorHashStyleTolerated) {
  auto r = parse_query("SELECT temp FROM sensors WHERE sensor # = 10");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_DOUBLE_EQ(r.value().where[0].number, 10.0);
}

TEST(Parser, Rejections) {
  EXPECT_FALSE(parse_query("").ok());
  EXPECT_FALSE(parse_query("FROM sensors").ok());
  EXPECT_FALSE(parse_query("SELECT FROM sensors").ok());
  EXPECT_FALSE(parse_query("SELECT temp").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors WHERE").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors WHERE x ~ 3").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors EPOCH DURATION -1").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors EPOCH DURATION 0").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors garbage here").ok());
  EXPECT_FALSE(parse_query("SELECT temp FROM sensors WHERE s = 'open").ok());
}

TEST(Parser, ErrorsCarryOffsets) {
  auto r = parse_query("SELECT temp FRUM sensors");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("offset"), std::string::npos);
}

TEST(Ast, PredicateNumericOps) {
  Predicate p;
  p.attribute = "temp";
  p.op = PredOp::kGe;
  p.number = 30.0;
  EXPECT_TRUE(p.eval(30.0));
  EXPECT_TRUE(p.eval(31.0));
  EXPECT_FALSE(p.eval(29.9));
  EXPECT_FALSE(p.eval(std::string("30")));  // type mismatch
}

TEST(Ast, ToStringRoundTripsThroughParser) {
  auto r = parse_query(
      "SELECT AVG(temp) FROM sensors WHERE room = 210 AND temp > 25 "
      "COST time 3 EPOCH DURATION 10");
  ASSERT_TRUE(r.ok());
  const std::string normalized = to_string(r.value());
  auto r2 = parse_query(normalized);
  ASSERT_TRUE(r2.ok()) << normalized << " -> " << r2.error();
  EXPECT_EQ(to_string(r2.value()), normalized);
}

TEST(Ast, PredicateOnFindsAttribute) {
  auto r = parse_query("SELECT t FROM s WHERE room = 2 AND sensor = 7");
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r.value().predicate_on("sensor"), nullptr);
  EXPECT_DOUBLE_EQ(r.value().predicate_on("sensor")->number, 7.0);
  EXPECT_EQ(r.value().predicate_on("nope"), nullptr);
}

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

class ClassifierTest : public ::testing::Test {
 protected:
  Classification classify(const std::string& text) {
    auto r = parse_query(text);
    EXPECT_TRUE(r.ok()) << r.error();
    return classifier_.classify(r.value());
  }
  QueryClassifier classifier_;
};

TEST_F(ClassifierTest, SimpleQuery) {
  auto c = classify("SELECT temp FROM sensors WHERE sensor = 10");
  EXPECT_EQ(c.primary, QueryClass::kSimple);
  EXPECT_EQ(c.inner, QueryClass::kSimple);
  EXPECT_FALSE(c.continuous);
}

TEST_F(ClassifierTest, AggregateQueryAllFunctions) {
  const struct {
    const char* name;
    sensornet::AggregateFunction fn;
  } cases[] = {
      {"MIN", sensornet::AggregateFunction::kMin},
      {"MAX", sensornet::AggregateFunction::kMax},
      {"AVG", sensornet::AggregateFunction::kAvg},
      {"SUM", sensornet::AggregateFunction::kSum},
      {"COUNT", sensornet::AggregateFunction::kCount},
  };
  for (const auto& test_case : cases) {
    auto c = classify(std::string("SELECT ") + test_case.name +
                      "(temp) FROM sensors WHERE room = 210");
    EXPECT_EQ(c.primary, QueryClass::kAggregate) << test_case.name;
    EXPECT_EQ(c.aggregate, test_case.fn) << test_case.name;
  }
}

TEST_F(ClassifierTest, ComplexQuery) {
  auto c = classify(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors WHERE room = 210");
  EXPECT_EQ(c.primary, QueryClass::kComplex);
  EXPECT_EQ(c.complex_function, "TEMP_DISTRIBUTION");
}

TEST_F(ClassifierTest, ContinuousWrapsInnerType) {
  auto c = classify(
      "SELECT temp FROM sensors WHERE sensor = 10 EPOCH DURATION 10");
  EXPECT_EQ(c.primary, QueryClass::kContinuous);
  EXPECT_EQ(c.inner, QueryClass::kSimple);
  EXPECT_TRUE(c.continuous);

  auto c2 = classify(
      "SELECT AVG(temp) FROM sensors WHERE room = 210 EPOCH DURATION 5");
  EXPECT_EQ(c2.primary, QueryClass::kContinuous);
  EXPECT_EQ(c2.inner, QueryClass::kAggregate);
}

TEST_F(ClassifierTest, ArbitraryFunctionClassifiesComplex) {
  // "we allow for any arbitrary function to be specified"
  auto c = classify("SELECT FFT(temp) FROM sensors");
  EXPECT_EQ(c.primary, QueryClass::kComplex);
  EXPECT_EQ(c.complex_function, "FFT");
}

TEST_F(ClassifierTest, RegisteredComplexFunction) {
  classifier_.register_complex_function("navier_stokes");
  EXPECT_TRUE(classifier_.knows_complex("NAVIER_STOKES"));
  EXPECT_TRUE(classifier_.knows_complex("navier_stokes"));
  EXPECT_FALSE(classifier_.knows_complex("fft2"));
}

TEST_F(ClassifierTest, AggregateNameCaseInsensitive) {
  auto c = classify("SELECT avg(temp) FROM sensors");
  EXPECT_EQ(c.primary, QueryClass::kAggregate);
}

// ---------------------------------------------------------------------------
// Canonicalization (query/canonical.hpp): the multi-query sharing keys.
// Equal keys may share one TAG collection, so the property that matters is
// two-sided: AST-equivalent rewrites never split a group, and anything that
// could change which sensors qualify (or when they are sampled) never merges.
// ---------------------------------------------------------------------------

class CanonicalTest : public ::testing::Test {
 protected:
  CanonicalQuery canon(const std::string& text) {
    auto r = parse_query(text);
    EXPECT_TRUE(r.ok()) << r.error();
    return canonicalize(r.value(), classifier_.classify(r.value()));
  }
  QueryClassifier classifier_;
};

TEST_F(CanonicalTest, OnlyContinuousAggregatesOverSensorsShare) {
  EXPECT_TRUE(canon("SELECT AVG(temp) FROM sensors EPOCH DURATION 5")
                  .shareable);
  // One-shot aggregate: no epoch schedule to share.
  EXPECT_FALSE(canon("SELECT AVG(temp) FROM sensors").shareable);
  // Continuous simple read: no aggregate partial state.
  EXPECT_FALSE(
      canon("SELECT temp FROM sensors WHERE sensor = 10 EPOCH DURATION 5")
          .shareable);
  // Complex function: executes on the grid, not in a TAG tree.
  EXPECT_FALSE(
      canon("SELECT TEMP_DISTRIBUTION(temp) FROM sensors EPOCH DURATION 5")
          .shareable);
}

TEST_F(CanonicalTest, StableUnderPredicateOrderWhitespaceAndCase) {
  const auto a = canon(
      "SELECT AVG(temp) FROM sensors WHERE room = 210 AND temp > 30 "
      "EPOCH DURATION 5");
  const auto b = canon(
      "select   avg(temp)   from SENSORS where TEMP > 30 and ROOM = 210 "
      "epoch duration 5");
  ASSERT_TRUE(a.shareable);
  ASSERT_TRUE(b.shareable);
  EXPECT_EQ(a.key.text, b.key.text);
  EXPECT_EQ(a.key.hash, b.key.hash);
}

TEST_F(CanonicalTest, DuplicatePredicatesCollapse) {
  const auto a = canon(
      "SELECT AVG(temp) FROM sensors WHERE room = 210 AND room = 210 "
      "EPOCH DURATION 5");
  const auto b =
      canon("SELECT AVG(temp) FROM sensors WHERE room = 210 EPOCH DURATION 5");
  EXPECT_EQ(a.key, b.key);
}

TEST_F(CanonicalTest, SensedAttributeAliasing) {
  // The executor evaluates every non-identity attribute against the sensed
  // reading (make_sensor_filter), so `temp > 30` and `temperature > 30`
  // qualify the same sensors and must share.
  const auto a =
      canon("SELECT AVG(temp) FROM sensors WHERE temp > 30 EPOCH DURATION 5");
  const auto b = canon(
      "SELECT AVG(temperature) FROM sensors WHERE temperature > 30 "
      "EPOCH DURATION 5");
  EXPECT_EQ(a.key, b.key);
}

TEST_F(CanonicalTest, AggregateFunctionExcludedFromKey) {
  // AVG, MAX, MIN, SUM and COUNT all finalize from the same merged partial
  // state — one collection serves them all; only the finalizer differs.
  const auto avg =
      canon("SELECT AVG(temp) FROM sensors WHERE room = 210 EPOCH DURATION 5");
  const auto max =
      canon("SELECT MAX(temp) FROM sensors WHERE room = 210 EPOCH DURATION 5");
  EXPECT_EQ(avg.key, max.key);
  EXPECT_EQ(avg.aggregate, sensornet::AggregateFunction::kAvg);
  EXPECT_EQ(max.aggregate, sensornet::AggregateFunction::kMax);
}

TEST_F(CanonicalTest, DifferentWhereSemanticsNeverMerge) {
  const auto base =
      canon("SELECT AVG(temp) FROM sensors WHERE room = 210 EPOCH DURATION 5");
  // Different attribute, operator, or value — each changes the qualifying
  // set and must keep its own key.
  EXPECT_NE(base.key, canon("SELECT AVG(temp) FROM sensors WHERE room = 211 "
                            "EPOCH DURATION 5")
                          .key);
  EXPECT_NE(base.key, canon("SELECT AVG(temp) FROM sensors WHERE room > 210 "
                            "EPOCH DURATION 5")
                          .key);
  EXPECT_NE(base.key, canon("SELECT AVG(temp) FROM sensors WHERE floor = 210 "
                            "EPOCH DURATION 5")
                          .key);
  // Identity attributes are never aliased to the sensed value.
  EXPECT_NE(base.key, canon("SELECT AVG(temp) FROM sensors WHERE temp = 210 "
                            "EPOCH DURATION 5")
                          .key);
  // Dropping the predicate entirely widens the set.
  EXPECT_NE(base.key,
            canon("SELECT AVG(temp) FROM sensors EPOCH DURATION 5").key);
}

TEST_F(CanonicalTest, CadenceAndCostStayInTheKey) {
  const auto base =
      canon("SELECT AVG(temp) FROM sensors WHERE room = 210 EPOCH DURATION 5");
  // A different epoch means a different sampling schedule.
  EXPECT_NE(base.key, canon("SELECT AVG(temp) FROM sensors WHERE room = 210 "
                            "EPOCH DURATION 10")
                          .key);
  // A COST clause changes the per-round delivery budget.
  EXPECT_NE(base.key, canon("SELECT AVG(temp) FROM sensors WHERE room = 210 "
                            "COST TIME 3 EPOCH DURATION 5")
                          .key);
}

TEST_F(CanonicalTest, NonShareableQueriesStillGetDistinctKeys) {
  const auto simple = canon("SELECT temp FROM sensors WHERE sensor = 10");
  const auto other = canon("SELECT temp FROM sensors WHERE sensor = 11");
  EXPECT_FALSE(simple.shareable);
  EXPECT_NE(simple.key, other.key);
  // The SELECT list distinguishes non-shareable queries with equal WHERE.
  EXPECT_NE(canon("SELECT temp FROM sensors").key,
            canon("SELECT humidity FROM sensors").key);
}

TEST_F(CanonicalTest, RandomizedPredicateShufflesPreserveTheKey) {
  // Property sweep: any permutation of the same conjunction canonicalizes
  // identically.  The conjunction is rebuilt as text so the whole pipeline
  // (parse -> classify -> canonicalize) is exercised each time.
  const std::vector<std::string> preds = {"room = 210", "temp > 30",
                                          "floor = 2", "x < 25.5"};
  std::string reference;
  std::vector<std::size_t> order = {0, 1, 2, 3};
  std::mt19937 rng(7);
  for (int trial = 0; trial < 24; ++trial) {
    std::shuffle(order.begin(), order.end(), rng);
    std::string text = "SELECT AVG(temp) FROM sensors WHERE ";
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i > 0) text += " AND ";
      text += preds[order[i]];
    }
    text += " EPOCH DURATION 5";
    const auto c = canon(text);
    ASSERT_TRUE(c.shareable) << text;
    if (reference.empty()) {
      reference = c.key.text;
    } else {
      EXPECT_EQ(c.key.text, reference) << text;
    }
  }
}

}  // namespace
}  // namespace pgrid::query
