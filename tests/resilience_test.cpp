// Failure-injection tests: the full runtime under lossy radios, node
// churn, and partitions.  The paper's runtime must "handle the transport
// level problems caused by low bandwidth, high latency, frequent
// disconnections and network topology changes" — these tests assert the
// pipeline stays consistent (no hangs, no double callbacks, sane partial
// results) when the substrate misbehaves.
#include <gtest/gtest.h>

#include <memory>

#include "core/runtime.hpp"
#include "net/churn.hpp"

namespace pgrid {
namespace {

core::RuntimeConfig lossy_config(double loss_prob) {
  core::RuntimeConfig config;
  config.sensors.sensor_count = 49;
  config.sensors.width_m = 91.0;
  config.sensors.height_m = 91.0;
  config.sensors.base_pos = {-5, -5, 0};
  config.sensors.noise_std = 0.0;
  config.sensors.radio.loss_prob = loss_prob;
  config.advertise_sensor_services = false;
  config.pde_resolution = 13;
  return config;
}

TEST(Resilience, AggregateSurvivesHeavyLoss) {
  // 20% per-attempt frame loss (3 retries): collections lose some reports
  // but complete, and the answer stays within the field's range.
  core::PervasiveGridRuntime runtime(lossy_config(0.2));
  auto outcome = runtime.submit_and_run("SELECT AVG(temp) FROM sensors",
                                        partition::SolutionModel::kAllToBase);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_LE(outcome.actual.accuracy, 1.0);
  EXPECT_GT(outcome.actual.accuracy, 0.5) << "most reports should survive";
  EXPECT_NEAR(outcome.actual.value, 20.0, 2.0);
}

TEST(Resilience, TreeAggregateDegradesGracefullyUnderLoss) {
  // Tree aggregation loses whole subtrees per drop, so accuracy can dip
  // harder — but the run must still complete with a sane value.
  core::PervasiveGridRuntime runtime(lossy_config(0.2));
  auto outcome = runtime.submit_and_run(
      "SELECT AVG(temp) FROM sensors",
      partition::SolutionModel::kTreeAggregate);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_GT(outcome.actual.value, 15.0);
  EXPECT_LT(outcome.actual.value, 25.0);
}

TEST(Resilience, RetriesRecoverMostLosses) {
  // With retransmission (default 3 retries), 10% loss yields near-complete
  // collections; with none, visibly fewer reports arrive.
  core::PervasiveGridRuntime with_retries(lossy_config(0.1));
  const auto good = with_retries.submit_and_run(
      "SELECT COUNT(temp) FROM sensors",
      partition::SolutionModel::kAllToBase);
  ASSERT_TRUE(good.ok);

  core::PervasiveGridRuntime no_retries(lossy_config(0.1));
  no_retries.network().set_max_retries(0);
  const auto bad = no_retries.submit_and_run(
      "SELECT COUNT(temp) FROM sensors",
      partition::SolutionModel::kAllToBase);
  ASSERT_TRUE(bad.ok);
  EXPECT_GT(good.actual.value, bad.actual.value);
  EXPECT_GT(good.actual.value, 44.0) << "retries should recover to ~all 49";
}

TEST(Resilience, ContinuousQueryRidesThroughChurn) {
  core::PervasiveGridRuntime runtime(lossy_config(0.02));
  // A third of the sensors flap throughout the watch.
  std::vector<net::NodeId> flappers(
      runtime.sensors().sensors().begin(),
      runtime.sensors().sensors().begin() + 16);
  net::ChurnConfig config;
  config.mean_up = sim::SimTime::seconds(20.0);
  config.mean_down = sim::SimTime::seconds(10.0);
  config.horizon = sim::SimTime::seconds(500.0);
  net::NodeChurn churn(runtime.network(), flappers, config, common::Rng(3));
  churn.start();

  auto outcome = runtime.submit_and_run(
      "SELECT AVG(temp) FROM sensors EPOCH DURATION 30");
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.epochs.size(),
            runtime.config().continuous_epochs);
  for (const auto& epoch : outcome.epochs) {
    EXPECT_TRUE(epoch.ok);
    EXPECT_NEAR(epoch.value, 20.0, 2.0);
  }
  EXPECT_GT(churn.transitions(), 0u);
}

TEST(Resilience, BasePartitionFailsCleanlyAndRecovers) {
  // Kill the base station's entire one-hop neighbourhood: every query
  // fails with an error rather than hanging; restoring the neighbourhood
  // restores service.
  core::PervasiveGridRuntime runtime(lossy_config(0.0));
  auto& net = runtime.network();
  const auto base = runtime.sensors().base_station();
  const auto ring = net.neighbors(base);
  std::vector<net::NodeId> sensor_ring;
  for (auto id : ring) {
    if (net.node(id).kind == net::NodeKind::kSensor) {
      net.set_node_up(id, false);
      sensor_ring.push_back(id);
    }
  }
  ASSERT_FALSE(sensor_ring.empty());

  const auto cut = runtime.submit_and_run("SELECT AVG(temp) FROM sensors");
  EXPECT_FALSE(cut.ok);
  EXPECT_FALSE(cut.error.empty());

  for (auto id : sensor_ring) net.set_node_up(id, true);
  const auto restored = runtime.submit_and_run("SELECT AVG(temp) FROM sensors");
  EXPECT_TRUE(restored.ok) << restored.error;
}

TEST(Resilience, ComplexQuerySolvesFromPartialData) {
  // Loss thins the readings; the PDE interpolates from whatever arrives.
  core::PervasiveGridRuntime runtime(lossy_config(0.15));
  sensornet::FireSource fire;
  fire.pos = {45, 45, 0};
  fire.start = sim::SimTime::seconds(-3600.0);
  fire.spread_m_per_s = 0.0;
  fire.initial_radius_m = 10.0;
  runtime.field().ignite(fire);
  auto outcome = runtime.submit_and_run(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors",
      partition::SolutionModel::kGridOffload);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_TRUE(outcome.actual.distribution.has_value());
  EXPECT_GT(outcome.actual.distribution->value_at({45, 45, 0}), 100.0);
}

TEST(Resilience, DecisionMakerStillDecidesUnderLoss) {
  // The pipeline (classify -> profile -> decide -> execute -> observe)
  // holds together on a degraded network.
  core::PervasiveGridRuntime runtime(lossy_config(0.1));
  for (int i = 0; i < 3; ++i) {
    auto outcome = runtime.submit_and_run("SELECT MAX(temp) FROM sensors");
    ASSERT_TRUE(outcome.ok) << outcome.error;
    runtime.reset_energy();
  }
  EXPECT_GT(runtime.decision_maker().observations(
                query::QueryClass::kAggregate,
                partition::SolutionModel::kTreeAggregate) +
                runtime.decision_maker().observations(
                    query::QueryClass::kAggregate,
                    partition::SolutionModel::kClusterAggregate),
            0u);
}

}  // namespace
}  // namespace pgrid
