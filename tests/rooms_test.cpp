// Tests for predicate-scoped collection: the paper's "Return Average
// Temperature in room # 210" — floor-plan rooms, WHERE filters applied
// in-network (TAG semantics), and end-to-end room-scoped queries.
#include <gtest/gtest.h>

#include <memory>

#include "core/runtime.hpp"

namespace pgrid {
namespace {

// ---------------------------------------------------------------------------
// Room numbering on the raw sensor network
// ---------------------------------------------------------------------------

class RoomFixture : public ::testing::Test {
 protected:
  RoomFixture() : net_(sim_, common::Rng(77)) {
    sensornet::SensorNetworkConfig config;
    config.sensor_count = 100;  // 10x10 over 135x135 m -> pitch 15 m,
    config.width_m = 135.0;     // aligned with the 15 m room grid so room
    config.height_m = 135.0;    // 210 (x=135, y in [15,30)) holds a sensor
    config.base_pos = {-5, -5, 0};
    config.noise_std = 0.0;
    config.room_size_m = 15.0;  // rooms 101..110, 201..210, ...
    snet_ = std::make_unique<sensornet::SensorNetwork>(net_, config,
                                                       common::Rng(4));
  }

  sim::Simulator sim_;
  net::Network net_;
  std::unique_ptr<sensornet::SensorNetwork> snet_;
};

TEST_F(RoomFixture, RoomNumberingMatchesFloorPlan) {
  // A node at (140, 20) is in column 9, row 1 -> room 210.
  net::NodeConfig probe;
  probe.pos = {140.0, 20.0, 0.0};
  const auto node = net_.add_node(probe);
  EXPECT_EQ(snet_->room_of(node), 210);
  net::NodeConfig origin;
  origin.pos = {1.0, 1.0, 0.0};
  EXPECT_EQ(snet_->room_of(net_.add_node(origin)), 101);
}

TEST_F(RoomFixture, RoomFilterScopesEveryStrategy) {
  sensornet::GradientField field(10.0, 1.0);
  // Manually compute the room-210 aggregate.
  sensornet::AggregateState direct;
  std::size_t in_room = 0;
  for (auto id : snet_->sensors()) {
    if (snet_->room_of(id) == 210) {
      direct.add(field.value(net_.node(id).pos, sim::SimTime::zero()));
      ++in_room;
    }
  }
  ASSERT_GT(in_room, 0u) << "test deployment must cover room 210";

  auto filter = [this](net::NodeId id, double) {
    return snet_->room_of(id) == 210;
  };

  sensornet::CollectionResult raw;
  snet_->collect_all_to_base(field, [&](auto r) { raw = r; }, filter);
  sim_.run();
  net_.reset_energy();
  sensornet::CollectionResult tree;
  snet_->collect_tree_aggregate(field, [&](auto r) { tree = r; }, filter);
  sim_.run();
  net_.reset_energy();
  sensornet::CollectionResult cluster;
  snet_->collect_cluster_aggregate(field, 10, [&](auto r) { cluster = r; },
                                   filter);
  sim_.run();

  for (const auto* result : {&raw, &tree, &cluster}) {
    EXPECT_EQ(result->expected, in_room);
    EXPECT_EQ(result->reports, in_room);
    EXPECT_NEAR(result->aggregate.result(sensornet::AggregateFunction::kAvg),
                direct.result(sensornet::AggregateFunction::kAvg), 1e-9);
  }
}

TEST_F(RoomFixture, ValuePredicateFiltersReadings) {
  sensornet::GradientField field(0.0, 1.0);  // value == x position
  auto filter = [](net::NodeId, double value) { return value > 100.0; };
  sensornet::CollectionResult result;
  snet_->collect_tree_aggregate(field, [&](auto r) { result = r; }, filter);
  sim_.run();
  EXPECT_GT(result.reports, 0u);
  EXPECT_GT(result.aggregate.result(sensornet::AggregateFunction::kMin),
            100.0);
  EXPECT_LT(result.reports, snet_->sensors().size());
}

TEST_F(RoomFixture, FilteredOutSensorsDoNotTransmitRawReadings) {
  sensornet::UniformField field(25.0);
  sensornet::CollectionResult everyone;
  snet_->collect_all_to_base(field, [&](auto r) { everyone = r; });
  sim_.run();
  net_.reset_energy();
  auto filter = [this](net::NodeId id, double) {
    return snet_->room_of(id) == 210;
  };
  sensornet::CollectionResult room_only;
  snet_->collect_all_to_base(field, [&](auto r) { room_only = r; }, filter);
  sim_.run();
  EXPECT_LT(room_only.energy_j, everyone.energy_j / 3.0)
      << "in-network qualification must suppress non-matching traffic";
}

// ---------------------------------------------------------------------------
// End-to-end room-scoped queries through the runtime
// ---------------------------------------------------------------------------

class RoomQueryFixture : public ::testing::Test {
 protected:
  RoomQueryFixture() {
    core::RuntimeConfig config;
    config.sensors.sensor_count = 100;
    config.sensors.width_m = 135.0;   // 15 m pitch, aligned with rooms
    config.sensors.height_m = 135.0;
    config.sensors.base_pos = {-5, -5, 0};
    config.sensors.noise_std = 0.0;
    config.sensors.room_size_m = 15.0;
    config.advertise_sensor_services = false;
    runtime_ = std::make_unique<core::PervasiveGridRuntime>(config);
    // Fire inside room 210 (x in [135,150), y in [15,30)), right next to
    // the sensor at (135, 15).
    sensornet::FireSource fire;
    fire.pos = {135.0, 17.0, 0.0};
    fire.start = sim::SimTime::seconds(-3600.0);
    fire.spread_m_per_s = 0.0;
    fire.initial_radius_m = 6.0;
    runtime_->field().ignite(fire);
  }
  std::unique_ptr<core::PervasiveGridRuntime> runtime_;
};

TEST_F(RoomQueryFixture, PaperExampleAverageTemperatureInRoom210) {
  // "Return Average Temperature in room # 210"
  const auto in_room = runtime_->submit_and_run(
      "SELECT AVG(temp) FROM sensors WHERE room = 210");
  ASSERT_TRUE(in_room.ok) << in_room.error;
  const auto whole_floor =
      runtime_->submit_and_run("SELECT AVG(temp) FROM sensors");
  ASSERT_TRUE(whole_floor.ok);
  // The burning room is far hotter than the floor-wide average.
  EXPECT_GT(in_room.actual.value, whole_floor.actual.value + 50.0);
}

TEST_F(RoomQueryFixture, RoomScopedCountMatchesFloorPlan) {
  const auto count = runtime_->submit_and_run(
      "SELECT COUNT(temp) FROM sensors WHERE room = 210");
  ASSERT_TRUE(count.ok) << count.error;
  std::size_t expected = 0;
  for (auto id : runtime_->sensors().sensors()) {
    if (runtime_->sensors().room_of(id) == 210) ++expected;
  }
  EXPECT_DOUBLE_EQ(count.actual.value, double(expected));
  EXPECT_GT(expected, 0u);
}

TEST_F(RoomQueryFixture, ValuePredicateEndToEnd) {
  // Count sensors reading above 100 C — only those near the fire qualify.
  const auto hot = runtime_->submit_and_run(
      "SELECT COUNT(temp) FROM sensors WHERE temp > 100");
  ASSERT_TRUE(hot.ok) << hot.error;
  EXPECT_GT(hot.actual.value, 0.0);
  EXPECT_LT(hot.actual.value, 10.0);
}

TEST_F(RoomQueryFixture, EmptySelectionFailsInformatively) {
  const auto none = runtime_->submit_and_run(
      "SELECT AVG(temp) FROM sensors WHERE room = 999");
  EXPECT_FALSE(none.ok);
  EXPECT_NE(none.error.find("no sensor reports"), std::string::npos);
}

TEST_F(RoomQueryFixture, ComplexQueryScopedToRegion) {
  // Distribution from the east wing only (x >= 75): the PDE still solves,
  // pinned by the wing's readings.
  const auto wing = runtime_->submit_and_run(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors WHERE x >= 75",
      partition::SolutionModel::kGridOffload);
  ASSERT_TRUE(wing.ok) << wing.error;
  ASSERT_TRUE(wing.actual.distribution.has_value());
  // Probe the hot sensor's own position (its reading pins that grid cell).
  EXPECT_GT(wing.actual.distribution->value_at({135, 15, 0}), 100.0);
}

TEST_F(RoomQueryFixture, ContinuousRoomScopedQuery) {
  const auto watch = runtime_->submit_and_run(
      "SELECT MAX(temp) FROM sensors WHERE room = 210 EPOCH DURATION 5");
  ASSERT_TRUE(watch.ok) << watch.error;
  EXPECT_FALSE(watch.epochs.empty());
  for (const auto& epoch : watch.epochs) {
    EXPECT_GT(epoch.value, 100.0) << "room 210 is on fire every epoch";
  }
}

}  // namespace
}  // namespace pgrid
