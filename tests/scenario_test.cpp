// Scenario-level integration tests: compact, asserting versions of the
// example programs, so the end-to-end stories (Figure 1 fire response,
// Section 1 epidemic and battlefield) are regression-protected.
#include <gtest/gtest.h>

#include <memory>

#include "agent/contract_net.hpp"
#include "agent/platform.hpp"
#include "compose/manager.hpp"
#include "compose/planner.hpp"
#include "compose/provider.hpp"
#include "core/runtime.hpp"
#include "discovery/broker.hpp"
#include "net/churn.hpp"
#include "query/window.hpp"

namespace pgrid {
namespace {

TEST(Scenario, FireResponseTimeline) {
  core::RuntimeConfig config;
  config.sensors.sensor_count = 100;
  config.sensors.width_m = 150.0;
  config.sensors.height_m = 150.0;
  config.sensors.base_pos = {-5, -5, 0};
  config.advertise_sensor_services = false;
  config.continuous_epochs = 6;
  config.pde_resolution = 21;
  core::PervasiveGridRuntime runtime(config);

  // Quiet watch: window alarm stays silent.
  query::WindowAlarm alarm(3, 25.0, 22.0);
  auto quiet = runtime.submit_and_run(
      "SELECT AVG(temp) FROM sensors EPOCH DURATION 20");
  ASSERT_TRUE(quiet.ok);
  for (const auto& epoch : quiet.epochs) {
    EXPECT_FALSE(alarm.push(epoch.value));
  }
  runtime.reset_energy();

  // Fire ignites and develops.
  sensornet::FireSource fire;
  fire.pos = {100, 90, 0};
  fire.start = runtime.simulator().now() + sim::SimTime::seconds(60.0);
  fire.ramp_seconds = 120.0;
  fire.spread_m_per_s = 0.1;
  runtime.field().ignite(fire);
  auto burning = runtime.submit_and_run(
      "SELECT AVG(temp) FROM sensors EPOCH DURATION 60");
  ASSERT_TRUE(burning.ok);
  bool alarmed = false;
  for (const auto& epoch : burning.epochs) {
    alarmed = alarm.push(epoch.value) || alarmed;
  }
  EXPECT_TRUE(alarmed) << "the watch must detect the developing fire";
  runtime.reset_energy();

  // Situational queries: the MAX finds the fire; the distribution locates
  // it.
  auto max_q = runtime.submit_and_run("SELECT MAX(temp) FROM sensors");
  ASSERT_TRUE(max_q.ok);
  EXPECT_GT(max_q.actual.value, 300.0);
  runtime.reset_energy();

  auto dist = runtime.submit_and_run(
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors COST time 5");
  ASSERT_TRUE(dist.ok);
  ASSERT_TRUE(dist.actual.distribution.has_value());
  const auto& field = *dist.actual.distribution;
  EXPECT_GT(field.value_at({100, 90, 0}), field.value_at({10, 10, 0}) + 50.0)
      << "the solved field localizes the fire";
  // Time-critical preference avoided the slow handheld.
  EXPECT_NE(dist.model, partition::SolutionModel::kHandheldLocal);
}

TEST(Scenario, EpidemicDiscoveryCompositionAndDeparture) {
  sim::Simulator sim;
  net::Network network(sim, common::Rng(2026));
  agent::AgentPlatform platform(network);
  auto ontology = discovery::make_standard_ontology();

  auto add_node = [&](double x, double y) {
    net::NodeConfig c;
    c.pos = {x, y, 0};
    c.radio = net::LinkClass::wifi();
    c.unlimited_energy = true;
    return network.add_node(c);
  };
  const auto hub = add_node(0, 0);
  auto broker_ptr =
      std::make_unique<discovery::BrokerAgent>("broker", hub, ontology);
  const auto broker = platform.register_agent(std::move(broker_ptr));
  const auto investigator = platform.register_agent(
      std::make_unique<agent::LambdaAgent>(
          "epi", hub, [](agent::LambdaAgent&, const agent::Envelope&) {}));

  auto add_service = [&](const std::string& name, const std::string& cls,
                         double x, double y, double ops) {
    discovery::ServiceDescription service;
    service.name = name;
    service.service_class = cls;
    auto provider = std::make_unique<compose::ServiceProviderAgent>(
        name, add_node(x, y), service, ops);
    auto* raw = provider.get();
    const auto id = platform.register_agent(std::move(provider));
    raw->service().provider = id;
    discovery::advertise(platform, id, broker, raw->service());
    sim.run();
    return raw;
  };
  auto* lab = add_service("mobile-lab", "PathogenSensor", 20, 0, 1e7);
  add_service("buoy", "PathogenSensor", 40, 30, 1e6);
  add_service("miner", "DecisionTreeMiner", 5, 0, 2e9);
  add_service("fourier", "FourierSpectrumService", 5, 0, 2e9);
  add_service("combiner", "DataMiningService", 5, 0, 2e9);

  // Semantic sweep finds all sensor-branch services.
  discovery::ServiceRequest request;
  request.desired_class = "SensorService";
  request.max_results = 10;
  std::vector<discovery::Match> sources;
  discovery::discover(platform, investigator, broker, request,
                      sim::SimTime::seconds(10.0),
                      [&](std::vector<discovery::Match> m) {
                        sources = std::move(m);
                      });
  sim.run();
  EXPECT_EQ(sources.size(), 2u);  // lab + buoy

  // The stream-mining pipeline composes and runs.
  auto plan = compose::make_stream_mining_planner().plan("mine-data-stream");
  ASSERT_TRUE(plan.ok());
  compose::CompositionManager manager(platform, investigator, broker);
  compose::CompositionReport mined;
  manager.execute(plan.value(), compose::CompositionOptions{},
                  [&](compose::CompositionReport r) { mined = r; });
  sim.run();
  EXPECT_TRUE(mined.success);
  EXPECT_EQ(mined.tasks_completed, 6u);

  // The lab goes silent mid-lease: re-binding keeps pathogen confirmation
  // available via the buoy.
  lab->set_dead(true);
  compose::TaskGraph confirm;
  compose::TaskSpec spec;
  spec.name = "confirm";
  spec.service_class = "PathogenSensor";
  confirm.add_task(spec);
  compose::CompositionOptions options;
  options.invoke_timeout = sim::SimTime::seconds(3.0);
  compose::CompositionReport report;
  manager.execute(confirm, options,
                  [&](compose::CompositionReport r) { report = r; });
  sim.run();
  EXPECT_TRUE(report.success);
  EXPECT_GE(report.rebinds, 1u);
}

TEST(Scenario, BattlefieldEmissionsAndOrders) {
  core::RuntimeConfig config;
  config.sensors.sensor_count = 64;
  config.sensors.width_m = 300.0;
  config.sensors.height_m = 300.0;
  config.sensors.radio.range_m = 60.0;
  config.sensors.base_pos = {-10, -10, 0};
  config.advertise_sensor_services = false;
  core::PervasiveGridRuntime runtime(config);

  // Emission discipline: under the default energy objective the watch uses
  // in-network aggregation, not raw streaming.
  auto watch = runtime.submit_and_run("SELECT MAX(temp) FROM sensors");
  ASSERT_TRUE(watch.ok);
  EXPECT_TRUE(watch.model == partition::SolutionModel::kTreeAggregate ||
              watch.model == partition::SolutionModel::kClusterAggregate);
  runtime.reset_energy();

  // Orders to a field unit that is temporarily dark: store-and-forward
  // deputy holds them until the unit re-emerges.
  auto& platform = runtime.agents();
  const auto unit_node = runtime.sensors().sensors()[30];
  std::vector<agent::Envelope> inbox;
  const auto unit = platform.register_agent(
      std::make_unique<agent::LambdaAgent>(
          "unit", unit_node,
          [&](agent::LambdaAgent&, const agent::Envelope& e) {
            inbox.push_back(e);
          }),
      std::make_unique<agent::StoreAndForwardDeputy>(
          sim::SimTime::seconds(2.0), sim::SimTime::seconds(120.0)));
  runtime.network().set_node_up(unit_node, false);

  agent::Envelope order;
  order.sender = platform.find_by_name("handheld")->id();
  order.receiver = unit;
  order.payload = "hold position";
  bool delivered = false;
  platform.send(order, [&](bool ok) { delivered = ok; });
  runtime.simulator().schedule(sim::SimTime::seconds(30.0), [&] {
    runtime.network().set_node_up(unit_node, true);
  });
  runtime.simulator().run();
  EXPECT_TRUE(delivered);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].payload, "hold position");
}

}  // namespace
}  // namespace pgrid
