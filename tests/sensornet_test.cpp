// Unit tests for the sensor-network layer: fields, aggregation states,
// clustering, the four collection models, reads, and lifetime accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/stats.hpp"

#include "sensornet/clustering.hpp"
#include "sensornet/field.hpp"
#include "sensornet/lifetime.hpp"
#include "sensornet/sensor_network.hpp"

namespace pgrid::sensornet {
namespace {

// ---------------------------------------------------------------------------
// Fields
// ---------------------------------------------------------------------------

TEST(Field, UniformEverywhere) {
  UniformField field(21.5);
  EXPECT_DOUBLE_EQ(field.value({0, 0, 0}, sim::SimTime::zero()), 21.5);
  EXPECT_DOUBLE_EQ(field.value({100, -5, 2}, sim::SimTime::seconds(99)), 21.5);
}

TEST(Field, GradientAlongX) {
  GradientField field(10.0, 0.5);
  EXPECT_DOUBLE_EQ(field.value({0, 0, 0}, sim::SimTime::zero()), 10.0);
  EXPECT_DOUBLE_EQ(field.value({20, 7, 0}, sim::SimTime::zero()), 20.0);
}

TEST(Field, FireIsAmbientBeforeIgnition) {
  BuildingTemperatureField field(20.0);
  FireSource fire;
  fire.pos = {50, 50, 0};
  fire.start = sim::SimTime::seconds(100.0);
  field.ignite(fire);
  EXPECT_DOUBLE_EQ(field.value({50, 50, 0}, sim::SimTime::seconds(50.0)), 20.0);
}

TEST(Field, FireHeatsEpicenterAndRamps) {
  BuildingTemperatureField field(20.0);
  FireSource fire;
  fire.pos = {50, 50, 0};
  fire.peak_celsius = 600.0;
  fire.ramp_seconds = 100.0;
  field.ignite(fire);
  const double early = field.value({50, 50, 0}, sim::SimTime::seconds(10.0));
  const double late = field.value({50, 50, 0}, sim::SimTime::seconds(200.0));
  EXPECT_GT(early, 20.0);
  EXPECT_GT(late, early);
  EXPECT_NEAR(late, 620.0, 1.0);  // ambient + full peak at the epicenter
}

TEST(Field, FireDecaysWithDistance) {
  BuildingTemperatureField field(20.0);
  FireSource fire;
  fire.pos = {0, 0, 0};
  field.ignite(fire);
  const auto t = sim::SimTime::seconds(300.0);
  const double near = field.value({2, 0, 0}, t);
  const double mid = field.value({15, 0, 0}, t);
  const double far = field.value({200, 0, 0}, t);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
  EXPECT_NEAR(far, 20.0, 0.5);
}

TEST(Field, FireSpreadsOverTime) {
  BuildingTemperatureField field(20.0);
  FireSource fire;
  fire.pos = {0, 0, 0};
  fire.spread_m_per_s = 0.1;
  field.ignite(fire);
  const net::Vec3 probe{25, 0, 0};
  const double early = field.value(probe, sim::SimTime::seconds(120.0));
  const double late = field.value(probe, sim::SimTime::seconds(1200.0));
  EXPECT_GT(late, early) << "growing radius reaches farther probes";
}

TEST(Field, TwoFiresSuperpose) {
  BuildingTemperatureField field(20.0);
  FireSource a;
  a.pos = {0, 0, 0};
  FireSource b;
  b.pos = {10, 0, 0};
  field.ignite(a);
  field.ignite(b);
  EXPECT_EQ(field.fire_count(), 2u);
  const auto t = sim::SimTime::seconds(300.0);
  BuildingTemperatureField solo(20.0);
  solo.ignite(a);
  EXPECT_GT(field.value({5, 0, 0}, t), solo.value({5, 0, 0}, t));
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

TEST(Aggregation, SingleStateResults) {
  AggregateState s;
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.result(AggregateFunction::kMin), 1.0);
  EXPECT_DOUBLE_EQ(s.result(AggregateFunction::kMax), 5.0);
  EXPECT_DOUBLE_EQ(s.result(AggregateFunction::kSum), 14.0);
  EXPECT_DOUBLE_EQ(s.result(AggregateFunction::kAvg), 2.8);
  EXPECT_DOUBLE_EQ(s.result(AggregateFunction::kCount), 5.0);
}

TEST(Aggregation, EmptyStateIsZero) {
  AggregateState s;
  EXPECT_DOUBLE_EQ(s.result(AggregateFunction::kMin), 0.0);
  EXPECT_DOUBLE_EQ(s.result(AggregateFunction::kAvg), 0.0);
  EXPECT_DOUBLE_EQ(s.result(AggregateFunction::kCount), 0.0);
}

TEST(Aggregation, MergeEqualsFlatAggregation) {
  AggregateState left;
  AggregateState right;
  AggregateState whole;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 10;
    whole.add(v);
    (i % 2 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count, whole.count);
  EXPECT_DOUBLE_EQ(left.sum, whole.sum);
  EXPECT_DOUBLE_EQ(left.min, whole.min);
  EXPECT_DOUBLE_EQ(left.max, whole.max);
}

TEST(Aggregation, MergeAssociative) {
  AggregateState a, b, c;
  a.add(1);
  b.add(2);
  c.add(3);
  AggregateState ab = a;
  ab.merge(b);
  ab.merge(c);
  AggregateState bc = b;
  bc.merge(c);
  AggregateState a_bc = a;
  a_bc.merge(bc);
  EXPECT_DOUBLE_EQ(ab.sum, a_bc.sum);
  EXPECT_EQ(ab.count, a_bc.count);
  EXPECT_DOUBLE_EQ(ab.min, a_bc.min);
  EXPECT_DOUBLE_EQ(ab.max, a_bc.max);
}

TEST(Aggregation, ParseNames) {
  AggregateFunction fn;
  EXPECT_TRUE(parse_aggregate("avg", fn));
  EXPECT_EQ(fn, AggregateFunction::kAvg);
  EXPECT_TRUE(parse_aggregate("MAX", fn));
  EXPECT_EQ(fn, AggregateFunction::kMax);
  EXPECT_TRUE(parse_aggregate("Count", fn));
  EXPECT_EQ(fn, AggregateFunction::kCount);
  EXPECT_FALSE(parse_aggregate("median", fn));
}

// ---------------------------------------------------------------------------
// Fixture: a 7x7 grid network, base at the corner
// ---------------------------------------------------------------------------

class SensorNetFixture : public ::testing::Test {
 protected:
  SensorNetFixture() : net_(sim_, common::Rng(11)) {
    SensorNetworkConfig config;
    config.sensor_count = 49;
    config.width_m = 120.0;
    config.height_m = 120.0;
    config.base_pos = {-5.0, -5.0, 0.0};
    config.noise_std = 0.0;  // exact values for assertion-friendly tests
    snet_ = std::make_unique<SensorNetwork>(net_, config, common::Rng(5));
  }

  sim::Simulator sim_;
  net::Network net_;
  std::unique_ptr<SensorNetwork> snet_;
};

TEST_F(SensorNetFixture, DeploymentShape) {
  EXPECT_EQ(snet_->sensors().size(), 49u);
  EXPECT_EQ(net_.size(), 50u);
  EXPECT_EQ(net_.node(snet_->base_station()).kind,
            net::NodeKind::kBaseStation);
  EXPECT_TRUE(net_.node(snet_->base_station()).energy.is_unlimited());
  EXPECT_EQ(snet_->alive_sensors(), 49u);
}

TEST_F(SensorNetFixture, TreeCoversAllSensors) {
  const auto& tree = snet_->tree();
  for (auto id : snet_->sensors()) {
    EXPECT_TRUE(tree.contains(id)) << "sensor " << id;
  }
}

TEST_F(SensorNetFixture, SampleMatchesFieldWithoutNoise) {
  GradientField field(10.0, 1.0);
  const auto sensor = snet_->sensors()[3];
  const double expected =
      field.value(net_.node(sensor).pos, sim::SimTime::zero());
  EXPECT_DOUBLE_EQ(snet_->sample(sensor, field, sim::SimTime::zero()),
                   expected);
}

TEST_F(SensorNetFixture, SampleNoiseHasConfiguredSpread) {
  sim::Simulator sim2;
  net::Network net2(sim2, common::Rng(1));
  SensorNetworkConfig config;
  config.sensor_count = 1;
  config.noise_std = 2.0;
  SensorNetwork noisy(net2, config, common::Rng(9));
  UniformField field(100.0);
  common::Accumulator acc;
  for (int i = 0; i < 20000; ++i) {
    acc.add(noisy.sample(noisy.sensors()[0], field, sim::SimTime::zero()));
  }
  EXPECT_NEAR(acc.mean(), 100.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST_F(SensorNetFixture, AllToBaseCollectsEveryReading) {
  UniformField field(25.0);
  CollectionResult result;
  snet_->collect_all_to_base(field, [&](CollectionResult r) { result = r; });
  sim_.run();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.reports, 49u);
  EXPECT_EQ(result.raw.size(), 49u);
  EXPECT_NEAR(result.aggregate.result(AggregateFunction::kAvg), 25.0, 1e-9);
  EXPECT_GT(result.energy_j, 0.0);
  EXPECT_GT(result.elapsed_s, 0.0);
}

TEST_F(SensorNetFixture, TreeAggregateMatchesAllToBaseAnswer) {
  GradientField field(10.0, 0.25);
  CollectionResult raw;
  snet_->collect_all_to_base(field, [&](CollectionResult r) { raw = r; });
  sim_.run();
  net_.reset_energy();
  CollectionResult agg;
  snet_->collect_tree_aggregate(field, [&](CollectionResult r) { agg = r; });
  sim_.run();
  ASSERT_EQ(agg.reports, raw.reports);
  EXPECT_NEAR(agg.aggregate.result(AggregateFunction::kAvg),
              raw.aggregate.result(AggregateFunction::kAvg), 1e-9);
  EXPECT_NEAR(agg.aggregate.result(AggregateFunction::kMax),
              raw.aggregate.result(AggregateFunction::kMax), 1e-9);
}

TEST_F(SensorNetFixture, TreeAggregateUsesLessEnergyThanAllToBase) {
  // TAG's headline claim, which EXP-P5 sweeps: in-network aggregation
  // saves sensor energy vs shipping every raw reading.
  UniformField field(25.0);
  CollectionResult raw;
  snet_->collect_all_to_base(field, [&](CollectionResult r) { raw = r; });
  sim_.run();
  net_.reset_energy();
  CollectionResult agg;
  snet_->collect_tree_aggregate(field, [&](CollectionResult r) { agg = r; });
  sim_.run();
  EXPECT_LT(agg.energy_j, raw.energy_j);
}

TEST_F(SensorNetFixture, ClusterAggregateMatchesAnswer) {
  GradientField field(5.0, 0.5);
  CollectionResult result;
  snet_->collect_cluster_aggregate(field, 7,
                                   [&](CollectionResult r) { result = r; });
  sim_.run();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.reports, 49u);
  // Exact average of the gradient over all sensors.
  double expected = 0.0;
  for (auto id : snet_->sensors()) {
    expected += field.value(net_.node(id).pos, sim::SimTime::zero());
  }
  expected /= 49.0;
  EXPECT_NEAR(result.aggregate.result(AggregateFunction::kAvg), expected, 1e-9);
}

TEST_F(SensorNetFixture, RegionAveragesDeliverKPoints) {
  GradientField field(5.0, 0.5);
  CollectionResult result;
  snet_->collect_region_averages(field, 4,
                                 [&](CollectionResult r) { result = r; });
  sim_.run();
  EXPECT_EQ(result.raw.size(), 4u);
  for (const auto& reading : result.raw) {
    EXPECT_EQ(reading.sensor, net::kInvalidNode);
    EXPECT_GT(reading.value, 5.0 - 1e-9);
    EXPECT_LT(reading.value, 5.0 + 0.5 * 120.0 + 1e-9);
    EXPECT_GE(reading.pos.x, 0.0);
    EXPECT_LE(reading.pos.x, 120.0);
  }
}

TEST_F(SensorNetFixture, RegionAveragesCheaperThanAllToBase) {
  UniformField field(25.0);
  CollectionResult raw;
  snet_->collect_all_to_base(field, [&](CollectionResult r) { raw = r; });
  sim_.run();
  net_.reset_energy();
  CollectionResult regions;
  snet_->collect_region_averages(field, 4,
                                 [&](CollectionResult r) { regions = r; });
  sim_.run();
  EXPECT_LT(regions.energy_j, raw.energy_j);
}

TEST_F(SensorNetFixture, DeadSensorExcludedFromCollection) {
  UniformField field(25.0);
  // Kill a leaf-ish sensor far from the base.
  const auto victim = snet_->sensors()[48];
  net_.set_node_up(victim, false);
  CollectionResult result;
  snet_->collect_tree_aggregate(field, [&](CollectionResult r) { result = r; });
  sim_.run();
  EXPECT_EQ(result.expected, 48u);
  EXPECT_EQ(result.reports, 48u);
  EXPECT_TRUE(result.complete);
}

TEST_F(SensorNetFixture, ReadSensorRoundTrip) {
  GradientField field(10.0, 1.0);
  const auto sensor = snet_->sensors()[24];
  ReadResult result;
  snet_->read_sensor(sensor, field, [&](ReadResult r) { result = r; });
  sim_.run();
  EXPECT_TRUE(result.ok);
  EXPECT_DOUBLE_EQ(result.value,
                   field.value(net_.node(sensor).pos, sim::SimTime::zero()));
  EXPECT_GT(result.elapsed_s, 0.0);
  EXPECT_GT(result.energy_j, 0.0);
}

TEST_F(SensorNetFixture, ReadDeadSensorFails) {
  UniformField field(25.0);
  const auto sensor = snet_->sensors()[10];
  net_.set_node_up(sensor, false);
  ReadResult result;
  result.ok = true;
  snet_->read_sensor(sensor, field, [&](ReadResult r) { result = r; });
  sim_.run();
  EXPECT_FALSE(result.ok);
}

TEST_F(SensorNetFixture, FarSensorReadCostsMoreThanNearOne) {
  UniformField field(25.0);
  ReadResult near_result;
  snet_->read_sensor(snet_->sensors()[0], field,
                     [&](ReadResult r) { near_result = r; });
  sim_.run();
  net_.reset_energy();
  ReadResult far_result;
  snet_->read_sensor(snet_->sensors()[48], field,
                     [&](ReadResult r) { far_result = r; });
  sim_.run();
  EXPECT_GT(far_result.elapsed_s, near_result.elapsed_s);
  EXPECT_GT(far_result.energy_j, near_result.energy_j);
}

// ---------------------------------------------------------------------------
// Clustering
// ---------------------------------------------------------------------------

TEST_F(SensorNetFixture, ClustersPartitionAliveSensors) {
  common::Rng rng(77);
  auto clusters = form_clusters(net_, snet_->sensors(), 7, rng);
  ASSERT_FALSE(clusters.empty());
  std::set<net::NodeId> seen;
  for (const auto& cluster : clusters) {
    EXPECT_NE(cluster.head, net::kInvalidNode);
    EXPECT_FALSE(cluster.members.empty());
    // Head is a member.
    EXPECT_NE(std::find(cluster.members.begin(), cluster.members.end(),
                        cluster.head),
              cluster.members.end());
    for (auto id : cluster.members) {
      EXPECT_TRUE(seen.insert(id).second) << "node in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), 49u);
}

TEST_F(SensorNetFixture, ClusterCountCappedByAliveNodes) {
  common::Rng rng(77);
  auto clusters = form_clusters(net_, snet_->sensors(), 500, rng);
  EXPECT_LE(clusters.size(), 49u);
}

TEST_F(SensorNetFixture, ClusteringSkipsDeadNodes) {
  net_.set_node_up(snet_->sensors()[0], false);
  common::Rng rng(77);
  auto clusters = form_clusters(net_, snet_->sensors(), 5, rng);
  for (const auto& cluster : clusters) {
    for (auto id : cluster.members) EXPECT_NE(id, snet_->sensors()[0]);
  }
}

TEST(Clustering, EmptyInput) {
  sim::Simulator sim;
  net::Network net(sim, common::Rng(1));
  common::Rng rng(2);
  EXPECT_TRUE(form_clusters(net, {}, 3, rng).empty());
}

// ---------------------------------------------------------------------------
// Lifetime
// ---------------------------------------------------------------------------

TEST(Lifetime, TreeOutlivesAllToBase) {
  // Small batteries so the test terminates quickly.
  auto run = [](CollectionStrategy strategy) {
    sim::Simulator sim;
    net::Network net(sim, common::Rng(31));
    SensorNetworkConfig config;
    config.sensor_count = 25;
    config.width_m = 80.0;
    config.height_m = 80.0;
    config.base_pos = {-5, -5, 0};
    config.battery_j = 0.002;
    SensorNetwork snet(net, config, common::Rng(13));
    UniformField field(25.0);
    LifetimeResult result;
    measure_lifetime(snet, field, strategy, 5, 2000,
                     [&](LifetimeResult r) { result = r; });
    sim.run();
    return result;
  };
  const auto raw = run(CollectionStrategy::kAllToBase);
  const auto tree = run(CollectionStrategy::kTreeAggregate);
  EXPECT_FALSE(raw.hit_round_cap);
  EXPECT_FALSE(tree.hit_round_cap);
  EXPECT_GT(tree.rounds, raw.rounds)
      << "aggregation extends network lifetime (TAG claim)";
  EXPECT_GT(raw.rounds, 0u);
}

TEST(Lifetime, RoundCapRespected) {
  sim::Simulator sim;
  net::Network net(sim, common::Rng(31));
  SensorNetworkConfig config;
  config.sensor_count = 9;
  config.width_m = 40.0;
  config.height_m = 40.0;
  config.battery_j = 100.0;  // effectively infinite
  SensorNetwork snet(net, config, common::Rng(13));
  UniformField field(25.0);
  LifetimeResult result;
  measure_lifetime(snet, field, CollectionStrategy::kTreeAggregate, 3, 10,
                   [&](LifetimeResult r) { result = r; });
  sim.run();
  EXPECT_TRUE(result.hit_round_cap);
  EXPECT_EQ(result.rounds, 10u);
}

}  // namespace
}  // namespace pgrid::sensornet
