// Unit tests for the discrete-event kernel: ordering, determinism,
// cancellation, bounded runs.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace pgrid::sim {
namespace {

TEST(SimTime, ArithmeticAndConversion) {
  const auto a = SimTime::seconds(1.5);
  const auto b = SimTime::milliseconds(500);
  EXPECT_EQ((a + b).us, 2000000);
  EXPECT_EQ((a - b).us, 1000000);
  EXPECT_DOUBLE_EQ(a.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(b.to_ms(), 500.0);
  EXPECT_LT(b, a);
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::seconds(3.0), [&] { order.push_back(3); });
  sim.schedule(SimTime::seconds(1.0), [&] { order.push_back(1); });
  sim.schedule(SimTime::seconds(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::seconds(3.0));
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(SimTime::seconds(1.0), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(SimTime::seconds(1.0), [&] {
    times.push_back(sim.now().to_seconds());
    sim.schedule(SimTime::seconds(2.0), [&] {
      times.push_back(sim.now().to_seconds());
    });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule(SimTime::seconds(5.0), [&] {
    sim.schedule(SimTime{-1000}, [&] {
      fired = true;
      EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 5.0);
    });
  });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule(SimTime::seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(handle));
  EXPECT_FALSE(sim.cancel(handle));  // double cancel
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInvalidHandle) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{0}));
  EXPECT_FALSE(sim.cancel(EventHandle{12345}));
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  sim.schedule(SimTime::seconds(2.0), [&] { ++fired; });
  sim.schedule(SimTime::seconds(10.0), [&] { ++fired; });
  const auto processed = sim.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(processed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::seconds(5.0));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(SimTime::seconds(7.0));
  EXPECT_EQ(sim.now(), SimTime::seconds(7.0));
}

TEST(Simulator, StepOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  sim.schedule(SimTime::seconds(2.0), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  sim.schedule(SimTime::seconds(1.0), [] {});
  auto h = sim.schedule(SimTime::seconds(2.0), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(h);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, ClearDropsEverything) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  sim.clear();
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double fire_time = -1.0;
  sim.schedule_at(SimTime::seconds(4.0),
                  [&] { fire_time = sim.now().to_seconds(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fire_time, 4.0);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  std::vector<std::int64_t> fire_us;
  for (int i = 0; i < 5000; ++i) {
    // Deterministic pseudo-scatter of times.
    const auto t = SimTime::microseconds((i * 7919) % 10007);
    sim.schedule(t, [&fire_us, &sim] { fire_us.push_back(sim.now().us); });
  }
  sim.run();
  ASSERT_EQ(fire_us.size(), 5000u);
  for (std::size_t i = 1; i < fire_us.size(); ++i) {
    EXPECT_LE(fire_us[i - 1], fire_us[i]);
  }
}

}  // namespace
}  // namespace pgrid::sim
