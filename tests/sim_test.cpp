// Unit tests for the discrete-event kernel: ordering, determinism,
// cancellation, bounded runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace pgrid::sim {
namespace {

TEST(SimTime, ArithmeticAndConversion) {
  const auto a = SimTime::seconds(1.5);
  const auto b = SimTime::milliseconds(500);
  EXPECT_EQ((a + b).us, 2000000);
  EXPECT_EQ((a - b).us, 1000000);
  EXPECT_DOUBLE_EQ(a.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(b.to_ms(), 500.0);
  EXPECT_LT(b, a);
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::seconds(3.0), [&] { order.push_back(3); });
  sim.schedule(SimTime::seconds(1.0), [&] { order.push_back(1); });
  sim.schedule(SimTime::seconds(2.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::seconds(3.0));
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(SimTime::seconds(1.0), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(SimTime::seconds(1.0), [&] {
    times.push_back(sim.now().to_seconds());
    sim.schedule(SimTime::seconds(2.0), [&] {
      times.push_back(sim.now().to_seconds());
    });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule(SimTime::seconds(5.0), [&] {
    sim.schedule(SimTime{-1000}, [&] {
      fired = true;
      EXPECT_DOUBLE_EQ(sim.now().to_seconds(), 5.0);
    });
  });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule(SimTime::seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(handle));
  EXPECT_FALSE(sim.cancel(handle));  // double cancel
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInvalidHandle) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{0}));
  EXPECT_FALSE(sim.cancel(EventHandle{12345}));
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  sim.schedule(SimTime::seconds(2.0), [&] { ++fired; });
  sim.schedule(SimTime::seconds(10.0), [&] { ++fired; });
  const auto processed = sim.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(processed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::seconds(5.0));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(SimTime::seconds(7.0));
  EXPECT_EQ(sim.now(), SimTime::seconds(7.0));
}

TEST(Simulator, StepOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  sim.schedule(SimTime::seconds(2.0), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  sim.schedule(SimTime::seconds(1.0), [] {});
  auto h = sim.schedule(SimTime::seconds(2.0), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(h);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, ClearDropsEverything) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  sim.clear();
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double fire_time = -1.0;
  sim.schedule_at(SimTime::seconds(4.0),
                  [&] { fire_time = sim.now().to_seconds(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fire_time, 4.0);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(handle)) << "fired events must not be cancellable";
  EXPECT_EQ(sim.pending(), 0u) << "stale cancel must not corrupt pending()";
  // The queue stays fully usable afterwards.
  sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StaleHandleNeverAliasesAReusedSlot) {
  Simulator sim;
  bool late_fired = false;
  auto first = sim.schedule(SimTime::seconds(1.0), [] {});
  sim.run();
  // The fired event's slot is recycled for the next event; the old handle
  // must not cancel the newcomer.
  auto second = sim.schedule(SimTime::seconds(1.0), [&] { late_fired = true; });
  EXPECT_FALSE(sim.cancel(first));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(late_fired);
  EXPECT_FALSE(sim.cancel(second));
}

TEST(Simulator, CancelledHandleStaysDeadAfterSlotReuse) {
  Simulator sim;
  bool fired = false;
  auto victim = sim.schedule(SimTime::seconds(1.0), [] {});
  EXPECT_TRUE(sim.cancel(victim));
  sim.schedule(SimTime::seconds(2.0), [&] { fired = true; });
  EXPECT_FALSE(sim.cancel(victim)) << "cancel must not hit the reused slot";
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, PendingIsExactThroughCancelAndFire) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(sim.schedule(SimTime::seconds(1.0 + i), [] {}));
  }
  EXPECT_EQ(sim.pending(), 8u);
  sim.cancel(handles[2]);
  sim.cancel(handles[5]);
  EXPECT_EQ(sim.pending(), 6u);
  sim.run_until(SimTime::seconds(4.0));  // fires 1s, 3s, 4s (2s cancelled)
  EXPECT_EQ(sim.pending(), 3u);
  EXPECT_FALSE(sim.cancel(handles[0])) << "already fired";
  EXPECT_EQ(sim.pending(), 3u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilExactlyAtEventTimestamp) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(5.0), [&] { ++fired; });
  sim.schedule(SimTime::seconds(5.0), [&] { ++fired; });
  sim.schedule(SimTime{5000001}, [&] { ++fired; });
  // Events at exactly the deadline fire; one microsecond later does not.
  EXPECT_EQ(sim.run_until(SimTime::seconds(5.0)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::seconds(5.0));
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, ClearWithPendingCancellations) {
  Simulator sim;
  int fired = 0;
  auto a = sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  auto b = sim.schedule(SimTime::seconds(2.0), [&] { ++fired; });
  sim.schedule(SimTime::seconds(3.0), [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(a));
  sim.clear();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_FALSE(sim.cancel(b)) << "clear() invalidates outstanding handles";
  // Slots recycled by clear() host new events cleanly.
  auto c = sim.schedule(SimTime::seconds(1.0), [&] { ++fired; });
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_FALSE(sim.cancel(b));
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.cancel(c));
}

TEST(Simulator, CancelDuringCallbackTargetsLaterEvent) {
  Simulator sim;
  bool victim_fired = false;
  EventHandle victim;
  sim.schedule(SimTime::seconds(1.0), [&] {
    EXPECT_TRUE(sim.cancel(victim));
    EXPECT_FALSE(sim.cancel(victim));
  });
  victim = sim.schedule(SimTime::seconds(2.0), [&] { victim_fired = true; });
  sim.run();
  EXPECT_FALSE(victim_fired);
}

TEST(Simulator, TraceContextRestoredAcrossNestedSchedules) {
  Simulator sim;
  std::vector<std::uint64_t> observed;
  sim.set_trace_context(7);
  sim.schedule(SimTime::seconds(1.0), [&] {
    observed.push_back(sim.trace_context());  // inherits 7
    sim.set_trace_context(11);
    // This continuation inherits 11, the context at scheduling time...
    sim.schedule(SimTime::seconds(1.0), [&] {
      observed.push_back(sim.trace_context());
      sim.set_trace_context(13);
    });
  });
  sim.schedule(SimTime::seconds(3.0), [&] {
    // ...while a sibling scheduled under 7 still sees 7: the kernel
    // restores the pre-fire context after every event, including ones
    // that mutated it (directly or via nested schedules).
    observed.push_back(sim.trace_context());
  });
  sim.set_trace_context(0);
  sim.schedule(SimTime::seconds(4.0), [&] {
    observed.push_back(sim.trace_context());
  });
  sim.run();
  EXPECT_EQ(observed, (std::vector<std::uint64_t>{7, 11, 7, 0}));
  EXPECT_EQ(sim.trace_context(), 0u);
}

TEST(Simulator, MoveOnlyCaptureAndHeapSpill) {
  Simulator sim;
  // Move-only captures were impossible under std::function; large captures
  // exercise SmallFn's heap fallback on the same code path.
  auto payload = std::make_unique<int>(41);
  int got = 0;
  sim.schedule(SimTime::seconds(1.0),
               [p = std::move(payload), &got] { got = *p + 1; });
  struct Big {
    double a[16] = {3.5};
  } big;
  double big_got = 0.0;
  sim.schedule(SimTime::seconds(2.0), [big, &big_got] { big_got = big.a[0]; });
  sim.run();
  EXPECT_EQ(got, 42);
  EXPECT_DOUBLE_EQ(big_got, 3.5);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  std::vector<std::int64_t> fire_us;
  for (int i = 0; i < 5000; ++i) {
    // Deterministic pseudo-scatter of times.
    const auto t = SimTime::microseconds((i * 7919) % 10007);
    sim.schedule(t, [&fire_us, &sim] { fire_us.push_back(sim.now().us); });
  }
  sim.run();
  ASSERT_EQ(fire_us.size(), 5000u);
  for (std::size_t i = 1; i < fire_us.size(); ++i) {
    EXPECT_LE(fire_us[i - 1], fire_us[i]);
  }
}

TEST(Simulator, StressOrderingWithInterleavedCancels) {
  // Heavy mixed workload: scatter-scheduled events, a deterministic third
  // of them cancelled (some from inside callbacks), order still exact and
  // pending() still precise throughout.
  Simulator sim;
  std::vector<std::int64_t> fire_us;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 4000; ++i) {
    const auto t = SimTime::microseconds((i * 6007) % 9973 + 1);
    handles.push_back(
        sim.schedule(t, [&fire_us, &sim] { fire_us.push_back(sim.now().us); }));
  }
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); i += 3) {
    ASSERT_TRUE(sim.cancel(handles[i]));
    ++cancelled;
  }
  EXPECT_EQ(sim.pending(), 4000u - cancelled);
  sim.run();
  EXPECT_EQ(fire_us.size(), 4000u - cancelled);
  for (std::size_t i = 1; i < fire_us.size(); ++i) {
    EXPECT_LE(fire_us[i - 1], fire_us[i]);
  }
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace pgrid::sim
