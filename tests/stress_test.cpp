// Stress and edge-case coverage: concurrent agent conversations, wide
// composition fans, wired-link churn, scheduler conservation, gossip
// coverage statistics, and parser robustness against garbage.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "agent/platform.hpp"
#include "compose/manager.hpp"
#include "compose/provider.hpp"
#include "discovery/broker.hpp"
#include "grid/infrastructure.hpp"
#include "net/network.hpp"
#include "core/runtime.hpp"
#include "query/parser.hpp"
#include "sim/simulator.hpp"

namespace pgrid {
namespace {

TEST(Stress, TwoHundredConcurrentRequestsAllResolve) {
  sim::Simulator sim;
  net::Network net(sim, common::Rng(1));
  agent::AgentPlatform platform(net);
  net::NodeConfig c;
  c.radio = net::LinkClass::wifi();
  c.unlimited_energy = true;
  c.pos = {0, 0, 0};
  const auto a = net.add_node(c);
  c.pos = {50, 0, 0};
  const auto b = net.add_node(c);

  const auto client = platform.register_agent(
      std::make_unique<agent::LambdaAgent>(
          "client", a, [](agent::LambdaAgent&, const agent::Envelope&) {}));
  // Echo server: replies with its own request payload.
  const auto server = platform.register_agent(
      std::make_unique<agent::LambdaAgent>(
          "server", b, [](agent::LambdaAgent& self, const agent::Envelope& e) {
            self.platform()->send(
                make_reply(e, agent::Performative::kInform, e.payload));
          }));

  // 200 interleaved conversations; each must get ITS OWN answer back.
  std::size_t correct = 0;
  std::size_t answered = 0;
  for (int i = 0; i < 200; ++i) {
    agent::Envelope env;
    env.sender = client;
    env.receiver = server;
    env.performative = agent::Performative::kRequest;
    env.payload = "conversation-" + std::to_string(i);
    const std::string expected = env.payload;
    platform.request(env, sim::SimTime::seconds(60.0),
                     [&, expected](common::Result<agent::Envelope> reply) {
                       ++answered;
                       if (reply.ok() && reply.value().payload == expected) {
                         ++correct;
                       }
                     });
  }
  sim.run();
  EXPECT_EQ(answered, 200u);
  EXPECT_EQ(correct, 200u) << "conversation isolation";
  EXPECT_EQ(platform.stats().timed_out, 0u);
}

TEST(Stress, WideParallelCompositionFan) {
  sim::Simulator sim;
  net::Network net(sim, common::Rng(2));
  agent::AgentPlatform platform(net);
  auto ontology = discovery::make_standard_ontology();
  net::NodeConfig c;
  c.radio = net::LinkClass::wifi();
  c.unlimited_energy = true;
  const auto hub = net.add_node(c);
  auto broker = std::make_unique<discovery::BrokerAgent>("b", hub, ontology);
  const auto broker_id = platform.register_agent(std::move(broker));
  const auto client = platform.register_agent(
      std::make_unique<agent::LambdaAgent>(
          "c", hub, [](agent::LambdaAgent&, const agent::Envelope&) {}));

  discovery::ServiceDescription service;
  service.name = "worker";
  service.service_class = "ClusteringService";
  auto provider = std::make_unique<compose::ServiceProviderAgent>(
      "worker", hub, service, 1e9);
  auto* provider_raw = provider.get();
  const auto provider_id = platform.register_agent(std::move(provider));
  provider_raw->service().provider = provider_id;
  discovery::advertise(platform, provider_id, broker_id,
                       provider_raw->service());
  sim.run();

  // 30 parallel sources feeding one join.
  compose::TaskGraph graph;
  std::vector<std::size_t> sources;
  for (int i = 0; i < 30; ++i) {
    compose::TaskSpec spec;
    spec.name = "shard-" + std::to_string(i);
    spec.service_class = "ClusteringService";
    sources.push_back(graph.add_task(spec));
  }
  compose::TaskSpec join;
  join.name = "join";
  join.service_class = "ClusteringService";
  const auto join_index = graph.add_task(join);
  for (auto s : sources) graph.add_edge(s, join_index);

  compose::CompositionManager manager(platform, client, broker_id);
  compose::CompositionReport report;
  manager.execute(graph, compose::CompositionOptions{},
                  [&](compose::CompositionReport r) { report = r; });
  sim.run();
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.tasks_completed, 31u);
  EXPECT_EQ(provider_raw->invocations(), 31u);
}

TEST(Stress, WiredLinkChurnDisconnectsGrid) {
  sim::Simulator sim;
  net::Network net(sim, common::Rng(3));
  net::NodeConfig c;
  c.unlimited_energy = true;
  const auto gateway = net.add_node(c);
  grid::GridInfrastructure infra(net, gateway, {{"ws", 1e9}});
  const auto machine = infra.machine_node(0);

  // Backhaul down: jobs fail cleanly.
  net.set_wired_link_up(gateway, machine, false);
  grid::JobResult down_result;
  down_result.ok = true;
  infra.submit(1e8, 1000, 100, [&](grid::JobResult r) { down_result = r; });
  sim.run();
  EXPECT_FALSE(down_result.ok);

  // Backhaul restored: jobs flow again.
  net.set_wired_link_up(gateway, machine, true);
  grid::JobResult up_result;
  infra.submit(1e8, 1000, 100, [&](grid::JobResult r) { up_result = r; });
  sim.run();
  EXPECT_TRUE(up_result.ok);
}

TEST(Stress, SchedulerConservesComputeOnOneMachine) {
  sim::Simulator sim;
  net::Network net(sim, common::Rng(4));
  net::NodeConfig c;
  c.unlimited_energy = true;
  const auto gateway = net.add_node(c);
  grid::GridInfrastructure infra(net, gateway, {{"only", 2e9}});

  double total_compute = 0.0;
  double total_flops = 0.0;
  int completed = 0;
  common::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const double flops = rng.uniform(1e8, 5e9);
    total_flops += flops;
    infra.submit(flops, 100, 100, [&, flops](grid::JobResult r) {
      EXPECT_TRUE(r.ok);
      total_compute += r.compute_s;
      ++completed;
    });
  }
  sim.run();
  EXPECT_EQ(completed, 20);
  EXPECT_NEAR(total_compute, total_flops / 2e9, 1e-6)
      << "compute time is conserved regardless of queueing";
  // One machine: the last finish time is at least the serial compute sum.
  EXPECT_GE(sim.now().to_seconds(), total_flops / 2e9 - 1e-6);
}

TEST(Stress, GossipCoverageGrowsWithFanout) {
  // Statistical property over seeds: mean coverage is monotone in fanout.
  double mean_coverage[3] = {0, 0, 0};
  const std::size_t kFanouts[3] = {1, 2, 4};
  const int kSeeds = 10;
  for (int trial = 0; trial < kSeeds; ++trial) {
    for (int f = 0; f < 3; ++f) {
      sim::Simulator sim;
      net::Network net(sim, common::Rng(100 + trial));
      net::NodeConfig c;
      c.radio = net::LinkClass::sensor_radio();
      c.unlimited_energy = true;
      common::Rng placement(500 + trial);
      auto ids = net::deploy_random(net, 80, 120, 120, c, placement);
      std::size_t reached = 0;
      net.gossip(ids[0], 32, kFanouts[f], nullptr,
                 [&](std::size_t r) { reached = r; });
      sim.run();
      mean_coverage[f] += double(reached) / 80.0;
    }
  }
  for (auto& m : mean_coverage) m /= kSeeds;
  EXPECT_LT(mean_coverage[0], mean_coverage[1]);
  EXPECT_LE(mean_coverage[1], mean_coverage[2] + 0.02);
  EXPECT_GT(mean_coverage[2], 0.7) << "fanout 4 nearly floods dense fields";
}

TEST(Stress, ParserSurvivesPseudoFuzz) {
  // Deterministic garbage: random token soup must never crash or hang and
  // must either parse or return an error (no exceptions escape).
  static const char* kTokens[] = {"SELECT", "FROM",  "WHERE", "COST",
                                  "EPOCH",  "AVG",   "(",     ")",
                                  ",",      "=",     "<=",    "temp",
                                  "sensors", "10",   "'x'",   "#",
                                  "{",      "}",     "AND",   "-3.5"};
  common::Rng rng(424242);
  for (int i = 0; i < 3000; ++i) {
    std::string text;
    // Half the trials start from a valid stem so the fuzz also explores
    // the grammar's suffix space, not just instant rejections.
    if (i % 2 == 0) text = "SELECT temp FROM sensors ";
    const std::size_t length = 1 + rng.index(12);
    for (std::size_t t = 0; t < length; ++t) {
      text += kTokens[rng.index(std::size(kTokens))];
      text += ' ';
    }
    const auto result = query::parse_query(text);
    if (result.ok()) {
      // Whatever parsed must round-trip through the normalizer.
      EXPECT_TRUE(query::parse_query(to_string(result.value())).ok())
          << text;
    }
  }
  // The valid stem alone must parse (guards against over-rejection).
  EXPECT_TRUE(query::parse_query("SELECT temp FROM sensors").ok());
}

TEST(Stress, LargeNetworkEndToEnd) {
  // 400 sensors, one shot of every query class — no hangs, sane costs.
  core::RuntimeConfig config;
  config.sensors.sensor_count = 400;
  config.sensors.width_m = 15.0 * 19 + 1;
  config.sensors.height_m = config.sensors.width_m;
  config.sensors.base_pos = {-5, -5, 0};
  config.advertise_sensor_services = false;
  config.pde_resolution = 17;
  core::PervasiveGridRuntime runtime(config);
  for (const char* text :
       {"SELECT temp FROM sensors WHERE sensor = 399",
        "SELECT AVG(temp) FROM sensors",
        "SELECT TEMP_DISTRIBUTION(temp) FROM sensors"}) {
    const auto outcome = runtime.submit_and_run(text);
    ASSERT_TRUE(outcome.ok) << text << ": " << outcome.error;
    EXPECT_GT(outcome.actual.response_s, 0.0);
    runtime.reset_energy();
  }
}

}  // namespace
}  // namespace pgrid
