// Tests for the trace-scoped cost ledger: charge attribution, span
// semantics, trace-context propagation through the event kernel,
// conservation against the network's per-node counters, equivalence of the
// ledger-derived ActualCost with the legacy hand-summed brackets, and
// what-if isolation (clone ledgers never pollute the real one).
#include <gtest/gtest.h>

#include <numeric>

#include "core/runtime.hpp"
#include "net/network.hpp"
#include "partition/executor.hpp"
#include "query/parser.hpp"
#include "sim/simulator.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace pgrid {
namespace {

using telemetry::Cost;
using telemetry::CostLedger;
using telemetry::Span;
using telemetry::Subsystem;
using telemetry::TraceScope;

Cost bytes_cost(std::uint64_t bytes) {
  Cost cost;
  cost.bytes = bytes;
  cost.count = 1;
  return cost;
}

TEST(CostLedgerTest, ChargesAttributeToSubsystemAndTrace) {
  sim::Simulator sim;
  CostLedger ledger(sim);
  const auto a = ledger.new_trace();
  const auto b = ledger.new_trace();
  ASSERT_NE(a, b);

  ledger.charge(Subsystem::kWireless, a, bytes_cost(100));
  ledger.charge(Subsystem::kWireless, b, bytes_cost(40));
  ledger.charge(Subsystem::kGridCompute, a, [] {
    Cost c;
    c.ops = 2.5;
    return c;
  }());

  EXPECT_EQ(ledger.totals()[Subsystem::kWireless].bytes, 140u);
  EXPECT_DOUBLE_EQ(ledger.totals()[Subsystem::kGridCompute].ops, 2.5);
  EXPECT_EQ(ledger.trace(a)[Subsystem::kWireless].bytes, 100u);
  EXPECT_EQ(ledger.trace(b)[Subsystem::kWireless].bytes, 40u);
  EXPECT_TRUE(ledger.trace(b)[Subsystem::kGridCompute].empty());
  // An unknown trace reads as all-zero, not an error.
  EXPECT_TRUE(ledger.trace(9999).total().empty());
  EXPECT_EQ(ledger.trace_ids(), (std::vector<telemetry::TraceId>{a, b}));
}

TEST(CostLedgerTest, ResetClearsCountersButNotTraceAllocation) {
  sim::Simulator sim;
  CostLedger ledger(sim);
  const auto before = ledger.new_trace();
  ledger.charge(Subsystem::kBackhaul, before, bytes_cost(64));
  ledger.reset();
  EXPECT_TRUE(ledger.total().empty());
  EXPECT_TRUE(ledger.trace_ids().empty());
  // Ids keep climbing so a pre-reset id can never alias a new query.
  EXPECT_GT(ledger.new_trace(), before);
}

TEST(CostLedgerTest, SpanStampsSimulatedTimeUnderOpeningTrace) {
  sim::Simulator sim;
  CostLedger ledger(sim);
  const auto trace = ledger.new_trace();

  sim.schedule_at(sim::SimTime::seconds(1.0), [&] {
    TraceScope scope(sim, trace);
    auto span = std::make_shared<Span>(ledger, Subsystem::kSensing);
    EXPECT_EQ(ledger.open_spans(), 1);
    // The span closes three simulated seconds later, from an event that
    // runs under a *different* trace context: the charge must still land
    // under the trace active when the span opened.
    sim.schedule_at(sim::SimTime::seconds(4.0), [&, span] {
      TraceScope other(sim, ledger.new_trace());
      span->close();
    });
  });
  sim.run();

  EXPECT_EQ(ledger.open_spans(), 0);
  const auto sensing = ledger.trace(trace)[Subsystem::kSensing];
  EXPECT_DOUBLE_EQ(sensing.sim_seconds, 3.0);
  EXPECT_EQ(sensing.count, 1u);
}

TEST(CostLedgerTest, SpanCloseIsIdempotentAndMoveTransfersOwnership) {
  sim::Simulator sim;
  CostLedger ledger(sim);
  {
    Span a(ledger, Subsystem::kRuntime);
    EXPECT_TRUE(a.open());
    Span b = std::move(a);
    EXPECT_FALSE(a.open());
    EXPECT_TRUE(b.open());
    EXPECT_EQ(ledger.open_spans(), 1);
    b.close();
    b.close();  // idempotent
    EXPECT_EQ(ledger.open_spans(), 0);
  }
  // Destruction after an explicit close must not double-charge.
  EXPECT_EQ(ledger.totals()[Subsystem::kRuntime].count, 1u);
}

TEST(CostLedgerTest, TraceContextFollowsCausalEventChains) {
  sim::Simulator sim;
  CostLedger ledger(sim);
  const auto trace = ledger.new_trace();
  telemetry::TraceId seen_inner = telemetry::kNoTrace;
  telemetry::TraceId seen_outer = telemetry::kNoTrace;

  {
    TraceScope scope(sim, trace);
    // Events scheduled inside the scope inherit the trace, transitively.
    sim.schedule_at(sim::SimTime::seconds(1.0), [&] {
      sim.schedule_at(sim::SimTime::seconds(2.0),
                      [&] { seen_inner = sim.trace_context(); });
    });
  }
  // Scheduled outside any scope: runs untraced.
  sim.schedule_at(sim::SimTime::seconds(3.0),
                  [&] { seen_outer = sim.trace_context(); });
  EXPECT_EQ(sim.trace_context(), telemetry::kNoTrace);
  sim.run();

  EXPECT_EQ(seen_inner, trace);
  EXPECT_EQ(seen_outer, telemetry::kNoTrace);
}

net::NodeConfig sensor_at(double x, double y) {
  net::NodeConfig config;
  config.pos = {x, y, 0.0};
  config.kind = net::NodeKind::kSensor;
  config.radio = net::LinkClass::sensor_radio();
  config.battery_j = 2.0;
  return config;
}

std::uint64_t sum_node_tx_bytes(const net::Network& network) {
  std::uint64_t total = 0;
  for (net::NodeId id = 0; id < network.size(); ++id) {
    total += network.node(id).tx_bytes;
  }
  return total;
}

// Conservation at the network layer: the ledger's physical byte total is
// exactly the sum of every node's transmit counter, which is exactly the
// aggregate stats counter.
TEST(CostLedgerTest, FloodBytesConserveAgainstPerNodeCounters) {
  sim::Simulator sim;
  net::Network network(sim, common::Rng(7));
  for (int gx = 0; gx < 4; ++gx) {
    for (int gy = 0; gy < 4; ++gy) {
      network.add_node(sensor_at(gx * 15.0, gy * 15.0));
    }
  }
  std::size_t reached = 0;
  network.flood(0, 48, nullptr, [&](std::size_t r) { reached = r; });
  sim.run();
  ASSERT_EQ(reached, network.size());

  const auto& ledger = network.telemetry();
  EXPECT_GT(ledger.totals().network_bytes(), 0u);
  EXPECT_EQ(ledger.totals().network_bytes(), sum_node_tx_bytes(network));
  EXPECT_EQ(ledger.totals().network_bytes(), network.stats().bytes_sent);
  // Battery draw is conserved too (tx + rx on battery nodes).
  EXPECT_NEAR(ledger.total().joules, network.battery_energy_consumed(),
              1e-12);
}

core::RuntimeConfig scenario_config() {
  core::RuntimeConfig config;
  config.sensors.sensor_count = 49;
  config.sensors.width_m = 91.0;
  config.sensors.height_m = 91.0;
  config.sensors.base_pos = {-5, -5, 0};
  config.sensors.noise_std = 0.0;
  config.advertise_sensor_services = false;
  config.pde_resolution = 13;
  return config;
}

class TelemetryRuntimeFixture : public ::testing::Test {
 protected:
  TelemetryRuntimeFixture() : runtime_(scenario_config()) {
    sensornet::FireSource fire;
    fire.pos = {60, 60, 0};
    fire.start = sim::SimTime::seconds(-3600.0);
    fire.spread_m_per_s = 0.0;
    runtime_.field().ignite(fire);
  }
  core::PervasiveGridRuntime runtime_;
};

TEST_F(TelemetryRuntimeFixture, QueryBytesConserveAcrossTheStack) {
  const auto outcome = runtime_.submit_and_run(
      "SELECT AVG(temp) FROM sensors",
      partition::SolutionModel::kTreeAggregate);
  ASSERT_TRUE(outcome.ok) << outcome.error;

  const auto& ledger = runtime_.telemetry();
  // Ledger physical bytes == sum of per-node transmit counters == the
  // aggregate stats the network has always kept.
  EXPECT_EQ(ledger.totals().network_bytes(),
            sum_node_tx_bytes(runtime_.network()));
  EXPECT_EQ(ledger.totals().network_bytes(),
            runtime_.network().stats().bytes_sent);
  // The trace covers the whole round trip; ActualCost brackets only the
  // execution.  The difference is exactly the envelope transport on the
  // handheld <-> base link (one hop each way), whose logical wire size the
  // agent-messaging subsystem records.
  EXPECT_EQ(outcome.telemetry.network_bytes() - outcome.actual.data_bytes,
            outcome.telemetry[Subsystem::kAgentMessaging].bytes);
}

// Golden equivalence: bracketing execute_query with the pre-refactor
// hand-summed deltas (battery energy, stats().bytes_sent, wall clock) must
// reproduce the ledger-derived ActualCost.
TEST_F(TelemetryRuntimeFixture, ActualCostMatchesLegacyHandSummedBrackets) {
  const char* queries[] = {
      "SELECT temp FROM sensors WHERE sensor = 10",
      "SELECT AVG(temp) FROM sensors",
      "SELECT TEMP_DISTRIBUTION(temp) FROM sensors",
  };
  for (const char* text : queries) {
    auto context = runtime_.execution_context();
    auto parsed = query::parse_query(text);
    ASSERT_TRUE(parsed.ok());
    const auto cls = runtime_.classifier().classify(parsed.value());
    const auto model = partition::candidates_for(cls.inner).front();

    auto& network = runtime_.network();
    const double energy_before = network.battery_energy_consumed();
    const std::uint64_t bytes_before = network.stats().bytes_sent;
    const auto time_before = runtime_.simulator().now();

    partition::ActualCost actual;
    partition::execute_query(context, parsed.value(), cls, model,
                             [&](partition::ActualCost result) {
                               actual = std::move(result);
                             });
    runtime_.simulator().run();
    ASSERT_TRUE(actual.ok) << text << ": " << actual.error;

    EXPECT_EQ(actual.data_bytes, network.stats().bytes_sent - bytes_before)
        << text;
    EXPECT_NEAR(actual.energy_j,
                network.battery_energy_consumed() - energy_before, 1e-9)
        << text;
    EXPECT_DOUBLE_EQ(
        actual.response_s,
        (runtime_.simulator().now() - time_before).to_seconds())
        << text;
    EXPECT_GT(actual.compute_ops, 0.0) << text;
  }
}

TEST_F(TelemetryRuntimeFixture, QueryOutcomeCarriesPerSubsystemBreakdown) {
  const auto outcome =
      runtime_.submit_and_run("SELECT AVG(temp) FROM sensors",
                              partition::SolutionModel::kTreeAggregate);
  ASSERT_TRUE(outcome.ok) << outcome.error;

  EXPECT_NE(outcome.trace, telemetry::kNoTrace);
  // The runtime opened (and closed) a root span for this query.
  const auto runtime_cost = outcome.telemetry[Subsystem::kRuntime];
  EXPECT_EQ(runtime_cost.count, 1u);
  EXPECT_GT(runtime_cost.sim_seconds, 0.0);
  // Radio traffic and sensing rounds attribute to the same trace.
  EXPECT_GT(outcome.telemetry[Subsystem::kWireless].bytes, 0u);
  EXPECT_GT(outcome.telemetry[Subsystem::kSensing].count, 0u);
  // The trace row the ledger keeps is the same object the outcome carries.
  EXPECT_EQ(runtime_.telemetry().trace(outcome.trace).network_bytes(),
            outcome.telemetry.network_bytes());
  // No span leaked.
  EXPECT_EQ(runtime_.telemetry().open_spans(), 0);

  // Two queries get distinct traces; the ledger keeps both rows.
  const auto second =
      runtime_.submit_and_run("SELECT temp FROM sensors WHERE sensor = 3");
  ASSERT_TRUE(second.ok);
  EXPECT_NE(second.trace, outcome.trace);
  EXPECT_GE(runtime_.telemetry().trace_ids().size(), 2u);
}

TEST_F(TelemetryRuntimeFixture, WhatIfClonesDoNotPolluteTheRealLedger) {
  // Prime the real ledger with one real query.
  const auto real =
      runtime_.submit_and_run("SELECT AVG(temp) FROM sensors",
                              partition::SolutionModel::kClusterAggregate);
  ASSERT_TRUE(real.ok);
  const auto snapshot = runtime_.telemetry().totals();
  const auto traces_before = runtime_.telemetry().trace_ids().size();

  const auto trial = runtime_.what_if(
      "SELECT AVG(temp) FROM sensors",
      partition::SolutionModel::kAllToBase);
  ASSERT_TRUE(trial.ok) << trial.error;
  // The trial measured real costs on its clone...
  EXPECT_GT(trial.telemetry.network_bytes(), 0u);

  // ...but the deployment's ledger is bit-for-bit untouched.
  const auto& after = runtime_.telemetry().totals();
  for (std::size_t i = 0; i < telemetry::kSubsystemCount; ++i) {
    const auto s = static_cast<Subsystem>(i);
    EXPECT_EQ(after[s].bytes, snapshot[s].bytes);
    EXPECT_DOUBLE_EQ(after[s].joules, snapshot[s].joules);
    EXPECT_DOUBLE_EQ(after[s].ops, snapshot[s].ops);
    EXPECT_DOUBLE_EQ(after[s].sim_seconds, snapshot[s].sim_seconds);
    EXPECT_EQ(after[s].count, snapshot[s].count);
  }
  EXPECT_EQ(runtime_.telemetry().trace_ids().size(), traces_before);
  EXPECT_EQ(runtime_.telemetry().open_spans(), 0);
}

TEST(TelemetryExportTest, JsonAndCsvRoundTripTheLedgerShape) {
  sim::Simulator sim;
  CostLedger ledger(sim);
  const auto trace = ledger.new_trace();
  ledger.charge(Subsystem::kWireless, trace, bytes_cost(256));

  const std::string json = telemetry::to_json(ledger);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"wireless\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":256"), std::string::npos);
  EXPECT_NE(json.find("\"traces\""), std::string::npos);

  const std::string csv = telemetry::to_csv(ledger);
  EXPECT_NE(csv.find("wireless"), std::string::npos);
  EXPECT_NE(csv.find("256"), std::string::npos);
}

}  // namespace
}  // namespace pgrid
