// Tests for the what-if simulator (the paper's third component): trialling
// models on clones must mirror real execution exactly and leave the real
// deployment untouched.
#include <gtest/gtest.h>

#include <set>

#include "core/runtime.hpp"

namespace pgrid {
namespace {

core::RuntimeConfig scenario_config() {
  core::RuntimeConfig config;
  config.sensors.sensor_count = 49;
  config.sensors.width_m = 91.0;
  config.sensors.height_m = 91.0;
  config.sensors.base_pos = {-5, -5, 0};
  config.sensors.noise_std = 0.0;
  config.advertise_sensor_services = false;
  config.pde_resolution = 13;
  return config;
}

class WhatIfFixture : public ::testing::Test {
 protected:
  WhatIfFixture() : runtime_(scenario_config()) {
    sensornet::FireSource fire;
    fire.pos = {60, 60, 0};
    fire.start = sim::SimTime::seconds(-3600.0);
    fire.spread_m_per_s = 0.0;
    runtime_.field().ignite(fire);
  }
  core::PervasiveGridRuntime runtime_;
};

TEST_F(WhatIfFixture, CloneMirrorsRealExecution) {
  const std::string q = "SELECT AVG(temp) FROM sensors";
  const auto trial =
      runtime_.what_if(q, partition::SolutionModel::kTreeAggregate);
  ASSERT_TRUE(trial.ok) << trial.error;
  const auto real =
      runtime_.submit_and_run(q, partition::SolutionModel::kTreeAggregate);
  ASSERT_TRUE(real.ok);
  EXPECT_DOUBLE_EQ(trial.actual.value, real.actual.value);
  EXPECT_DOUBLE_EQ(trial.actual.energy_j, real.actual.energy_j);
  EXPECT_EQ(trial.actual.data_bytes, real.actual.data_bytes);
}

TEST_F(WhatIfFixture, TrialSpendsNoRealEnergy) {
  const auto before = runtime_.network().battery_energy_consumed();
  const auto sim_before = runtime_.simulator().now();
  runtime_.what_if("SELECT AVG(temp) FROM sensors",
                   partition::SolutionModel::kAllToBase);
  EXPECT_DOUBLE_EQ(runtime_.network().battery_energy_consumed(), before);
  EXPECT_EQ(runtime_.simulator().now(), sim_before);
  EXPECT_EQ(runtime_.decision_maker().observations(
                query::QueryClass::kAggregate,
                partition::SolutionModel::kAllToBase),
            0u)
      << "trials must not contaminate the learner";
}

TEST_F(WhatIfFixture, WhatIfAllCoversTheCandidateSet) {
  const auto outcomes = runtime_.what_if_all("SELECT AVG(temp) FROM sensors");
  ASSERT_EQ(outcomes.size(), 4u);  // aggregate candidates
  std::set<partition::SolutionModel> models;
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok) << outcome.error;
    models.insert(outcome.model);
  }
  EXPECT_EQ(models.size(), 4u);
}

TEST_F(WhatIfFixture, OracleLabelFromTrialsFeedsTheLearner) {
  // The measured-oracle workflow of EXP-P6, through the public API: trial
  // every model, label the cheapest, teach the decision maker.
  const std::string q = "SELECT AVG(temp) FROM sensors";
  const auto outcomes = runtime_.what_if_all(q);
  const auto* best = &outcomes.front();
  for (const auto& outcome : outcomes) {
    if (outcome.actual.energy_j < best->actual.energy_j) best = &outcome;
  }
  auto parsed = query::parse_query(q);
  const auto cls = runtime_.classifier().classify(parsed.value());
  auto ctx = runtime_.execution_context();
  const auto profile = partition::profile_from(ctx, cls);
  runtime_.decision_maker().add_example(cls.inner, query::CostMetric::kNone,
                                        profile, best->model);
  runtime_.decision_maker().retrain();
  EXPECT_EQ(runtime_.decision_maker().decide(cls.inner,
                                             query::CostMetric::kNone,
                                             profile),
            best->model);
}

TEST_F(WhatIfFixture, ParallelTrialsBitIdenticalToSerial) {
  // what_if_all evaluates candidate clones concurrently on the runtime's
  // pool; every clone is an isolated deterministic deployment, so the
  // parallel outcomes must be bit-for-bit the serial ones, in candidate
  // order.  Run a parallel deployment (4 pool workers, 4 trials in flight)
  // against a strictly serial one built from the same scenario.
  auto parallel_config = scenario_config();
  parallel_config.pool_threads = 4;
  parallel_config.what_if_parallelism = 4;
  auto serial_config = scenario_config();
  serial_config.pool_threads = 4;  // same solver chunking as the clones
  serial_config.what_if_parallelism = 1;
  core::PervasiveGridRuntime parallel_rt(parallel_config);
  core::PervasiveGridRuntime serial_rt(serial_config);
  sensornet::FireSource fire;
  fire.pos = {60, 60, 0};
  fire.start = sim::SimTime::seconds(-3600.0);
  fire.spread_m_per_s = 0.0;
  parallel_rt.field().ignite(fire);
  serial_rt.field().ignite(fire);

  const std::string q = "SELECT AVG(temp) FROM sensors";
  const auto par = parallel_rt.what_if_all(q);
  const auto ser = serial_rt.what_if_all(q);
  ASSERT_EQ(par.size(), ser.size());
  for (std::size_t i = 0; i < par.size(); ++i) {
    EXPECT_EQ(par[i].model, ser[i].model);
    EXPECT_EQ(par[i].ok, ser[i].ok);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(par[i].actual.value, ser[i].actual.value);
    EXPECT_EQ(par[i].actual.energy_j, ser[i].actual.energy_j);
    EXPECT_EQ(par[i].actual.response_s, ser[i].actual.response_s);
    EXPECT_EQ(par[i].actual.data_bytes, ser[i].actual.data_bytes);
    EXPECT_EQ(par[i].actual.compute_ops, ser[i].actual.compute_ops);
    EXPECT_EQ(par[i].handheld_response_s, ser[i].handheld_response_s);
    EXPECT_EQ(par[i].telemetry.network_bytes(),
              ser[i].telemetry.network_bytes());
  }
}

TEST_F(WhatIfFixture, ParallelTrialsLeaveTheRealDeploymentUntouched) {
  auto config = scenario_config();
  config.pool_threads = 4;
  core::PervasiveGridRuntime rt(config);
  const auto energy_before = rt.network().battery_energy_consumed();
  const auto now_before = rt.simulator().now();
  const auto outcomes = rt.what_if_all("SELECT AVG(temp) FROM sensors");
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& outcome : outcomes) EXPECT_TRUE(outcome.ok) << outcome.error;
  EXPECT_DOUBLE_EQ(rt.network().battery_energy_consumed(), energy_before);
  EXPECT_EQ(rt.simulator().now(), now_before);
}

TEST_F(WhatIfFixture, SerialThresholdForcesSerialPathBitIdentically) {
  // Raising the serial threshold above the candidate count must route
  // what_if_all down the serial path — and since the parallel path is
  // bit-identical by contract, the outcomes cannot change.
  auto thresholded_config = scenario_config();
  thresholded_config.pool_threads = 4;
  thresholded_config.what_if_serial_threshold = 100;
  auto batched_config = scenario_config();
  batched_config.pool_threads = 4;
  batched_config.what_if_serial_threshold = 0;
  core::PervasiveGridRuntime thresholded(thresholded_config);
  core::PervasiveGridRuntime batched(batched_config);

  const std::string q = "SELECT AVG(temp) FROM sensors";
  const auto serial = thresholded.what_if_all(q);
  const auto parallel = batched.what_if_all(q);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].actual.value, parallel[i].actual.value);
    EXPECT_EQ(serial[i].actual.energy_j, parallel[i].actual.energy_j);
    EXPECT_EQ(serial[i].actual.data_bytes, parallel[i].actual.data_bytes);
  }
}

TEST_F(WhatIfFixture, BatchedTrialsWithFewerWorkersThanCandidates) {
  // what_if_parallelism = 2 splits 4 candidates into two batches of two:
  // the batch boundaries must not leak into the outcomes.
  auto batched_config = scenario_config();
  batched_config.pool_threads = 4;
  batched_config.what_if_parallelism = 2;
  auto serial_config = scenario_config();
  serial_config.pool_threads = 4;
  serial_config.what_if_parallelism = 1;
  core::PervasiveGridRuntime batched(batched_config);
  core::PervasiveGridRuntime serial(serial_config);

  const std::string q = "SELECT AVG(temp) FROM sensors";
  const auto two_batches = batched.what_if_all(q);
  const auto one_by_one = serial.what_if_all(q);
  ASSERT_EQ(two_batches.size(), one_by_one.size());
  for (std::size_t i = 0; i < two_batches.size(); ++i) {
    EXPECT_EQ(two_batches[i].model, one_by_one[i].model);
    EXPECT_EQ(two_batches[i].actual.value, one_by_one[i].actual.value);
    EXPECT_EQ(two_batches[i].actual.energy_j, one_by_one[i].actual.energy_j);
    EXPECT_EQ(two_batches[i].telemetry.network_bytes(),
              one_by_one[i].telemetry.network_bytes());
  }
}

TEST_F(WhatIfFixture, ParseErrorSurfaces) {
  const auto outcomes = runtime_.what_if_all("SELEKT");
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok);
}

}  // namespace
}  // namespace pgrid
