// Tests for sliding-window operators and window alarms over continuous
// query streams, plus cross-stream correlation detection.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "mining/correlate.hpp"
#include "query/window.hpp"

namespace pgrid {
namespace {

using mining::CorrelationDetector;
using mining::pearson;
using query::SlidingWindow;
using query::WindowAlarm;

// ---------------------------------------------------------------------------
// SlidingWindow
// ---------------------------------------------------------------------------

TEST(SlidingWindow, FillsThenSlides) {
  SlidingWindow w(3);
  EXPECT_TRUE(w.empty());
  w.push(1.0);
  w.push(2.0);
  EXPECT_FALSE(w.full());
  w.push(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.push(10.0);  // evicts 1.0
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 10.0);
  EXPECT_DOUBLE_EQ(w.latest(), 10.0);
}

TEST(SlidingWindow, RunningSumStaysExact) {
  SlidingWindow w(16);
  common::Rng rng(5);
  for (int i = 0; i < 5000; ++i) w.push(rng.uniform(-100, 100));
  double direct = 0.0;
  for (double v : w.values()) direct += v;
  EXPECT_NEAR(w.sum(), direct, 1e-8);
}

TEST(SlidingWindow, SlopeOfLinearSeriesIsExact) {
  SlidingWindow w(10);
  for (int i = 0; i < 10; ++i) w.push(3.0 + 2.5 * i);
  EXPECT_NEAR(w.slope(), 2.5, 1e-12);
  // Sliding keeps the same slope for a continuing line.
  for (int i = 10; i < 25; ++i) w.push(3.0 + 2.5 * i);
  EXPECT_NEAR(w.slope(), 2.5, 1e-12);
}

TEST(SlidingWindow, SlopeOfConstantIsZeroAndShortWindowsSafe) {
  SlidingWindow w(8);
  EXPECT_DOUBLE_EQ(w.slope(), 0.0);
  w.push(7.0);
  EXPECT_DOUBLE_EQ(w.slope(), 0.0);
  for (int i = 0; i < 8; ++i) w.push(7.0);
  EXPECT_NEAR(w.slope(), 0.0, 1e-12);
}

TEST(SlidingWindow, ZeroCapacityClampsToOne) {
  SlidingWindow w(0);
  w.push(1.0);
  w.push(2.0);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w.latest(), 2.0);
}

// ---------------------------------------------------------------------------
// WindowAlarm
// ---------------------------------------------------------------------------

TEST(WindowAlarm, FiresOncePerExcursionWithHysteresis) {
  WindowAlarm alarm(3, 100.0, 50.0);
  // Rising: mean crosses 100 once.
  EXPECT_FALSE(alarm.push(30));
  EXPECT_FALSE(alarm.push(90));
  EXPECT_TRUE(alarm.push(200));   // mean ~106 -> fire
  EXPECT_FALSE(alarm.push(300));  // still high: no re-fire
  EXPECT_FALSE(alarm.push(10));   // mean 170: still above rearm
  EXPECT_FALSE(alarm.push(10));
  EXPECT_FALSE(alarm.push(10));   // mean 10 < 50 -> re-armed, no fire yet
  EXPECT_TRUE(alarm.armed());
  EXPECT_TRUE(alarm.push(500));   // second excursion
  EXPECT_EQ(alarm.fires(), 2u);
}

TEST(WindowAlarm, CustomStatistic) {
  // Alarm on the windowed MAX, not the mean.
  WindowAlarm alarm(5, 99.0, 10.0,
                    [](const SlidingWindow& w) { return w.max(); });
  EXPECT_FALSE(alarm.push(50));
  EXPECT_TRUE(alarm.push(100));  // single spike trips a max-alarm
  EXPECT_EQ(alarm.fires(), 1u);
}

// ---------------------------------------------------------------------------
// Pearson + CorrelationDetector
// ---------------------------------------------------------------------------

TEST(Pearson, PerfectAndInverseAndDegenerate) {
  std::deque<double> a{1, 2, 3, 4, 5};
  std::deque<double> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::deque<double> c{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
  std::deque<double> flat{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson(a, flat), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(Pearson, IndependentNoiseNearZero) {
  common::Rng rng(11);
  std::deque<double> a;
  std::deque<double> b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  EXPECT_LT(std::abs(pearson(a, b)), 0.05);
}

TEST(CorrelationDetector, FindsLaggedCauseEffect) {
  // The Section 1 story: toxin index leads hospital admissions by 3 days.
  common::Rng rng(7);
  CorrelationDetector detector(20, 5, 0.8, 2);
  std::deque<double> toxin_history;
  CorrelationDetector::Report last;
  bool alerted = false;
  for (int day = 0; day < 120; ++day) {
    const double toxin = 5.0 + 4.0 * std::sin(day * 0.37) + rng.normal(0, 0.2);
    toxin_history.push_back(toxin);
    const double admissions =
        toxin_history.size() > 3
            ? 20.0 + 3.0 * toxin_history[toxin_history.size() - 4] +
                  rng.normal(0, 0.5)
            : 20.0 + rng.normal(0, 0.5);
    last = detector.push(toxin, admissions);
    alerted = alerted || last.alert;
  }
  EXPECT_TRUE(alerted);
  EXPECT_EQ(last.lag, 3u) << "detector must recover the 3-day lead";
  EXPECT_GT(last.correlation, 0.8);
}

TEST(CorrelationDetector, NoAlertOnIndependentStreams) {
  common::Rng rng(13);
  CorrelationDetector detector(20, 5, 0.8, 2);
  for (int day = 0; day < 200; ++day) {
    detector.push(rng.normal(), rng.normal());
  }
  EXPECT_EQ(detector.alerts_raised(), 0u);
}

TEST(CorrelationDetector, PersistenceGatesOneOffSpikes) {
  // A single coincidental window above threshold must not alert when
  // min_persistence = 3.
  CorrelationDetector detector(5, 0, 0.9, 3);
  // Two perfectly correlated pushes within one window, then decorrelated.
  common::Rng rng(3);
  std::size_t alerts = 0;
  for (int i = 0; i < 6; ++i) {
    const auto report = detector.push(i, 2.0 * i);  // r = 1 once windowed
    alerts += report.alert ? 1 : 0;
    if (i == 5) break;
  }
  // Only 6 aligned samples: streak reaches 2 at most after window fills.
  EXPECT_EQ(alerts, 0u);
}

}  // namespace
}  // namespace pgrid
